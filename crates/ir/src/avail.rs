//! Available expressions.
//!
//! Forward must-analysis over canonical expression keys. An expression is
//! *available* at a point if it has been computed on every path from entry
//! and none of its operands redefined since. Candidate discovery for global
//! common subexpression elimination starts here.
//!
//! Canonical keys normalize commutative operands, so `E + F` and `F + E`
//! share a fact.

use crate::access::stmt_def_use;
use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dataflow::{solve, Direction, Meet, Problem, Solution};
use pivot_lang::{ExprId, ExprKind, Program, StmtId, Sym};
use std::collections::HashMap;

/// Canonical structural key of an expression.
pub type ExprKey = String;

/// Build the canonical key of an expression subtree. Commutative operator
/// operands are ordered by key so `E + F` ≡ `F + E`.
pub fn expr_key(prog: &Program, e: ExprId) -> ExprKey {
    match &prog.expr(e).kind {
        ExprKind::Const(c) => format!("{c}"),
        ExprKind::Var(v) => prog.symbols.name(*v).to_owned(),
        ExprKind::Index(a, subs) => {
            let subs: Vec<_> = subs.iter().map(|&s| expr_key(prog, s)).collect();
            format!("{}[{}]", prog.symbols.name(*a), subs.join(","))
        }
        ExprKind::Unary(op, a) => format!("({} {})", op.symbol(), expr_key(prog, a.to_owned())),
        ExprKind::Binary(op, a, b) => {
            let (mut ka, mut kb) = (expr_key(prog, *a), expr_key(prog, *b));
            if op.is_commutative() && kb < ka {
                std::mem::swap(&mut ka, &mut kb);
            }
            format!("({} {ka} {kb})", op.symbol())
        }
    }
}

/// Which symbols an expression depends on (operands, subscripts, arrays).
fn expr_deps(prog: &Program, e: ExprId) -> Vec<Sym> {
    let mut v = Vec::new();
    prog.expr_uses(e, &mut v);
    v.sort_unstable();
    v.dedup();
    v
}

/// A fact in the available-expression universe.
#[derive(Clone, Debug)]
pub struct AvailFact {
    /// Canonical key.
    pub key: ExprKey,
    /// Symbols whose redefinition kills the fact.
    pub deps: Vec<Sym>,
    /// Representative occurrences `(stmt, expr)` in the program.
    pub occurrences: Vec<(StmtId, ExprId)>,
}

/// Available-expressions analysis result.
#[derive(Clone, Debug)]
pub struct AvailExprs {
    /// Fact table.
    pub facts: Vec<AvailFact>,
    /// Key → fact index.
    pub index: HashMap<ExprKey, usize>,
    /// Symbol → facts killed by a definition of it.
    killed_by: HashMap<Sym, Vec<usize>>,
    /// Block-level solution.
    pub sol: Solution,
}

/// Is this expression a candidate fact? We track binary arithmetic
/// expressions (the paper's `B op C` shape), excluding faulting operators so
/// CSE never duplicates or removes a potential fault site, and excluding
/// trivial operands-only expressions.
fn is_candidate(prog: &Program, e: ExprId) -> bool {
    match &prog.expr(e).kind {
        ExprKind::Binary(op, ..) => {
            op.is_arithmetic() && !matches!(op, pivot_lang::BinOp::Div | pivot_lang::BinOp::Mod)
        }
        _ => false,
    }
}

/// Compute available expressions over the CFG.
pub fn compute(prog: &Program, cfg: &Cfg) -> AvailExprs {
    // Universe: all candidate expressions in attached statements.
    let mut facts: Vec<AvailFact> = Vec::new();
    let mut index: HashMap<ExprKey, usize> = HashMap::new();
    for s in prog.attached_stmts() {
        for e in prog.stmt_exprs(s) {
            if is_candidate(prog, e) {
                let key = expr_key(prog, e);
                let f = *index.entry(key.clone()).or_insert_with(|| {
                    facts.push(AvailFact {
                        key,
                        deps: expr_deps(prog, e),
                        occurrences: Vec::new(),
                    });
                    facts.len() - 1
                });
                facts[f].occurrences.push((s, e));
            }
        }
    }
    let universe = facts.len();
    // Dep → facts killed by a def of that symbol.
    let mut killed_by: HashMap<Sym, Vec<usize>> = HashMap::new();
    for (i, f) in facts.iter().enumerate() {
        for &d in &f.deps {
            killed_by.entry(d).or_default().push(i);
        }
    }

    let n = cfg.len();
    let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
    let mut kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
    for b in cfg.ids() {
        let g = &mut gen[b.index()];
        let k = &mut kill[b.index()];
        for &s in &cfg.block(b).stmts {
            apply_stmt(prog, s, &facts, &index, &killed_by, g, k);
        }
    }
    let prob = Problem {
        direction: Direction::Forward,
        meet: Meet::Intersect,
        universe,
        gen,
        kill,
        boundary: BitSet::new(universe),
    };
    let sol = solve(cfg, &prob);
    AvailExprs {
        facts,
        index,
        killed_by,
        sol,
    }
}

fn apply_stmt(
    prog: &Program,
    s: StmtId,
    facts: &[AvailFact],
    index: &HashMap<ExprKey, usize>,
    killed_by: &HashMap<Sym, Vec<usize>>,
    gen: &mut BitSet,
    kill: &mut BitSet,
) {
    // Expressions evaluated by this statement become available...
    for e in prog.stmt_exprs(s) {
        if is_candidate(prog, e) {
            if let Some(&f) = index.get(&expr_key(prog, e)) {
                gen.insert(f);
                kill.remove(f);
            }
        }
    }
    // ...then the statement's definitions kill dependent expressions.
    let du = stmt_def_use(prog, s);
    for sym in du.def_scalars.iter().chain(&du.def_arrays) {
        if let Some(killed) = killed_by.get(sym) {
            for &f in killed {
                gen.remove(f);
                kill.insert(f);
            }
        }
    }
    let _ = facts;
}

impl AvailExprs {
    /// Facts available immediately **before** statement `s`.
    pub fn avail_before(&self, prog: &Program, cfg: &Cfg, s: StmtId) -> BitSet {
        let b = cfg.block_of(s).expect("statement must be in the CFG");
        let universe = self.facts.len();
        let mut cur = self.sol.ins[b.index()].clone();
        let mut gen = BitSet::new(universe);
        let mut kill = BitSet::new(universe);
        for &t in &cfg.block(b).stmts {
            if t == s {
                break;
            }
            apply_stmt(
                prog,
                t,
                &self.facts,
                &self.index,
                &self.killed_by,
                &mut gen,
                &mut kill,
            );
        }
        cur.subtract(&kill);
        cur.union_with(&gen);
        cur
    }

    /// Is the expression with canonical key `key` available before `s`?
    pub fn is_avail_before(&self, prog: &Program, cfg: &Cfg, s: StmtId, key: &str) -> bool {
        match self.index.get(key) {
            Some(&f) => self.avail_before(prog, cfg, s).contains(f),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use pivot_lang::parser::parse;

    fn setup(src: &str) -> (Program, Cfg, AvailExprs) {
        let p = parse(src).unwrap();
        let cfg = build(&p);
        let av = compute(&p, &cfg);
        (p, cfg, av)
    }

    #[test]
    fn straight_line_availability() {
        let (p, cfg, av) = setup("d = e + f\nr = e + f\n");
        let ss = p.attached_stmts();
        assert!(av.is_avail_before(&p, &cfg, ss[1], "(+ e f)"));
        assert!(!av.is_avail_before(&p, &cfg, ss[0], "(+ e f)"));
    }

    #[test]
    fn commutative_normalization() {
        let (p, cfg, av) = setup("d = e + f\nr = f + e\n");
        let ss = p.attached_stmts();
        // Same canonical key for both orders.
        assert!(av.is_avail_before(&p, &cfg, ss[1], "(+ e f)"));
        assert_eq!(av.facts.len(), 1);
        assert_eq!(av.facts[0].occurrences.len(), 2);
    }

    #[test]
    fn redefinition_kills() {
        let (p, cfg, av) = setup("d = e + f\ne = 1\nr = e + f\n");
        let ss = p.attached_stmts();
        assert!(!av.is_avail_before(&p, &cfg, ss[2], "(+ e f)"));
    }

    #[test]
    fn must_hold_on_all_paths() {
        let (p, cfg, av) = setup("read c\nif (c > 0) then\n  d = e + f\nendif\nr = e + f\n");
        let ss = p.attached_stmts();
        // Only computed on the then-path: not available at the join.
        assert!(!av.is_avail_before(&p, &cfg, ss[3], "(+ e f)"));
    }

    #[test]
    fn available_when_computed_on_both_paths() {
        let (p, cfg, av) =
            setup("read c\nif (c > 0) then\n  d = e + f\nelse\n  g = e + f\nendif\nr = e + f\n");
        let ss = p.attached_stmts();
        assert!(av.is_avail_before(&p, &cfg, ss[4], "(+ e f)"));
    }

    #[test]
    fn array_write_kills_expressions_over_array() {
        let (p, cfg, av) = setup("d = A(i) + 1\nA(j) = 0\nr = A(i) + 1\n");
        let ss = p.attached_stmts();
        assert!(!av.is_avail_before(&p, &cfg, ss[2], "(+ 1 A[i])"));
    }

    #[test]
    fn division_not_tracked() {
        let (p, _cfg, av) = setup("d = e / f\nr = e / f\n");
        assert!(av.facts.is_empty());
        let _ = p;
    }

    #[test]
    fn loop_invariant_expression_available_in_body_after_predef() {
        let (p, cfg, av) = setup("d = e + f\ndo i = 1, 5\n  r = e + f\nenddo\n");
        let ss = p.attached_stmts();
        assert!(av.is_avail_before(&p, &cfg, ss[2], "(+ e f)"));
    }

    #[test]
    fn expr_key_shapes() {
        let p = parse("x = a + b * c\ny = R(i, j) - 1\n").unwrap();
        let ss = p.attached_stmts();
        let rhs = |s| match p.stmt(s).kind {
            pivot_lang::StmtKind::Assign { value, .. } => value,
            _ => unreachable!(),
        };
        // Commutative operands sort by key text: '(' < 'a'.
        assert_eq!(expr_key(&p, rhs(ss[0])), "(+ (* b c) a)");
        assert_eq!(expr_key(&p, rhs(ss[1])), "(- R[i,j] 1)");
    }
}

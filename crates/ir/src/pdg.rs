//! Program Dependence Graph: control dependence, region nodes, the control
//! dependence tree, the least-common-region (LCR) operator, and data
//! dependence summaries on region nodes (the paper's Figure 3).
//!
//! Two constructions are provided and cross-checked:
//! * [`control_dependence`] — the general Ferrante/Ottenstein/Warren
//!   algorithm on the CFG via postdominance frontiers;
//! * [`Pdg::build`] — the region-node tree derived from the structured AST
//!   (equivalent for structured programs, and the form the undo machinery
//!   navigates).
//!
//! Each data dependence is annotated on the least common region node of its
//! source and sink. Region summaries let legality screens (e.g. loop fusion)
//! consult only the inter-region dependences on one region node instead of
//! visiting every node under the candidate loops — the paper's Section 4.4
//! argument, measured in benches.

use crate::cfg::{BlockId, Cfg};
use crate::depend::Ddg;
use crate::dom::DomTree;
use pivot_lang::{BlockRole, Parent, Program, StmtId, StmtKind};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a region node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// What a region hangs from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionParent {
    /// The root region (whole program).
    Root,
    /// Region controlled by a predicate statement (`do` or `if`) with the
    /// given branch role.
    Under(StmtId, BlockRole),
}

/// A region node of the PDG.
#[derive(Clone, Debug)]
pub struct Region {
    /// Attachment.
    pub parent: RegionParent,
    /// Member statements, in program order. Compound members (`do`/`if`)
    /// own further regions.
    pub members: Vec<StmtId>,
    /// Depth in the region tree (root = 0).
    pub depth: u32,
}

/// The PDG region tree plus dependence summaries.
#[derive(Clone, Debug)]
pub struct Pdg {
    /// Region nodes; `RegionId(0)` is the root.
    pub regions: Vec<Region>,
    /// Region directly containing each statement.
    pub region_of: HashMap<StmtId, RegionId>,
    /// Regions owned by each compound statement (loop body, then, else).
    pub regions_of_stmt: HashMap<(StmtId, BlockRole), RegionId>,
    /// For each region: indices into the DDG's `deps` whose LCR it is.
    pub summaries: Vec<Vec<usize>>,
}

impl Pdg {
    /// Build the region tree from the structured program and annotate `ddg`'s
    /// dependences on region nodes.
    pub fn build(prog: &Program, ddg: &Ddg) -> Pdg {
        let mut pdg = Pdg {
            regions: vec![Region {
                parent: RegionParent::Root,
                members: Vec::new(),
                depth: 0,
            }],
            region_of: HashMap::new(),
            regions_of_stmt: HashMap::new(),
            summaries: Vec::new(),
        };
        let root = RegionId(0);
        let body: Vec<StmtId> = prog.body.clone();
        pdg.fill_region(prog, root, &body);
        pdg.summaries = vec![Vec::new(); pdg.regions.len()];
        for (i, d) in ddg.deps.iter().enumerate() {
            if let Some(r) = pdg.lcr(d.src, d.dst) {
                pdg.summaries[r.index()].push(i);
            }
        }
        pdg
    }

    fn new_region(&mut self, parent: RegionParent, depth: u32) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            parent,
            members: Vec::new(),
            depth,
        });
        id
    }

    fn fill_region(&mut self, prog: &Program, r: RegionId, stmts: &[StmtId]) {
        for &s in stmts {
            self.regions[r.index()].members.push(s);
            self.region_of.insert(s, r);
            let depth = self.regions[r.index()].depth + 1;
            match &prog.stmt(s).kind {
                StmtKind::DoLoop { body, .. } => {
                    let body = body.clone();
                    let sub = self.new_region(RegionParent::Under(s, BlockRole::LoopBody), depth);
                    self.regions_of_stmt.insert((s, BlockRole::LoopBody), sub);
                    self.fill_region(prog, sub, &body);
                }
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let (tb, eb) = (then_body.clone(), else_body.clone());
                    let t = self.new_region(RegionParent::Under(s, BlockRole::Then), depth);
                    self.regions_of_stmt.insert((s, BlockRole::Then), t);
                    self.fill_region(prog, t, &tb);
                    let e = self.new_region(RegionParent::Under(s, BlockRole::Else), depth);
                    self.regions_of_stmt.insert((s, BlockRole::Else), e);
                    self.fill_region(prog, e, &eb);
                }
                _ => {}
            }
        }
    }

    /// Chain of regions from the one containing `s` up to the root.
    pub fn region_chain(&self, s: StmtId) -> Vec<RegionId> {
        let mut out = Vec::new();
        let mut cur = match self.region_of.get(&s) {
            Some(&r) => r,
            None => return out,
        };
        loop {
            out.push(cur);
            match self.regions[cur.index()].parent {
                RegionParent::Root => break,
                RegionParent::Under(owner, _) => {
                    cur = *self.region_of.get(&owner).expect("owner stmt has a region");
                }
            }
        }
        out
    }

    /// Least common region of two statements (the paper's `LCR(s_i, s_j)`).
    pub fn lcr(&self, a: StmtId, b: StmtId) -> Option<RegionId> {
        let ca = self.region_chain(a);
        let cb = self.region_chain(b);
        if ca.is_empty() || cb.is_empty() {
            return None;
        }
        // Chains end at the root; find the deepest region present in both.
        let set: std::collections::HashSet<RegionId> = cb.into_iter().collect();
        ca.into_iter().find(|r| set.contains(r))
    }

    /// Dependence indices summarized on region `r`.
    pub fn summary(&self, r: RegionId) -> &[usize] {
        &self.summaries[r.index()]
    }

    /// Figure 3 legality screen for fusing `(l1, l2)`: consult only the
    /// dependences summarized on `LCR(l1, l2)`. If none of them connects the
    /// two loop subtrees, fusion is dependence-legal without visiting any
    /// node under the loops; otherwise run the precise aligned test.
    pub fn fusion_screen(&self, prog: &Program, ddg: &Ddg, l1: StmtId, l2: StmtId) -> bool {
        let Some(r) = self.lcr(l1, l2) else {
            return false;
        };
        let in1: std::collections::HashSet<StmtId> = prog.subtree(l1).into_iter().collect();
        let in2: std::collections::HashSet<StmtId> = prog.subtree(l2).into_iter().collect();
        let connecting = self.summary(r).iter().any(|&i| {
            let d = &ddg.deps[i];
            (in1.contains(&d.src) && in2.contains(&d.dst))
                || (in2.contains(&d.src) && in1.contains(&d.dst))
        });
        if !connecting {
            return true;
        }
        crate::depend::fusion_dep_legal(prog, l1, l2)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if the PDG has no regions (never happens after `build`).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Render the region tree with summaries (examples, debugging).
    pub fn dump(&self, prog: &Program, ddg: &Ddg) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, reg) in self.regions.iter().enumerate() {
            let r = RegionId(i as u32);
            let indent = "  ".repeat(reg.depth as usize);
            let _ = write!(out, "{indent}{r}");
            match reg.parent {
                RegionParent::Root => {
                    let _ = write!(out, " (root)");
                }
                RegionParent::Under(s, role) => {
                    let _ = write!(out, " (under {} {:?})", prog.stmt(s).label, role);
                }
            }
            let members: Vec<String> = reg
                .members
                .iter()
                .map(|&s| prog.stmt(s).label.to_string())
                .collect();
            let _ = write!(out, " members=[{}]", members.join(","));
            if !self.summaries[r.index()].is_empty() {
                let deps: Vec<String> = self.summaries[r.index()]
                    .iter()
                    .map(|&di| {
                        let d = &ddg.deps[di];
                        format!(
                            "{}→{} {:?}({})",
                            prog.stmt(d.src).label,
                            prog.stmt(d.dst).label,
                            d.kind,
                            prog.symbols.name(d.var)
                        )
                    })
                    .collect();
                let _ = write!(out, " deps={{{}}}", deps.join(", "));
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// CFG-based control dependence (validation path)
// ---------------------------------------------------------------------

/// Control dependence relation computed from the CFG: `cd[b]` lists the
/// blocks `b` is control-dependent on (Ferrante-Ottenstein-Warren via
/// postdominator walks on each edge).
pub fn control_dependence(cfg: &Cfg, pdom: &DomTree) -> Vec<Vec<BlockId>> {
    let mut cd: Vec<Vec<BlockId>> = vec![Vec::new(); cfg.len()];
    for a in cfg.ids() {
        if cfg.block(a).succs.len() < 2 {
            // Only branch points (loop headers, if conditions) create
            // control dependences; a single successor always postdominates.
            continue;
        }
        let stop = pdom.parent(a); // ipdom(a), exclusive end of the walk
        for &b in &cfg.block(a).succs {
            let mut cur = Some(b);
            while let Some(c) = cur {
                if Some(c) == stop {
                    break;
                }
                cd[c.index()].push(a);
                cur = pdom.parent(c);
            }
        }
    }
    for v in &mut cd {
        v.sort_unstable();
        v.dedup();
    }
    cd
}

/// Statement-level control dependence derived from the CFG path: which
/// predicate statements (loop headers / if conditions) each statement is
/// control-dependent on.
pub fn stmt_control_deps(
    prog: &Program,
    cfg: &Cfg,
    pdom: &DomTree,
) -> HashMap<StmtId, Vec<StmtId>> {
    let cd = control_dependence(cfg, pdom);
    let mut out: HashMap<StmtId, Vec<StmtId>> = HashMap::new();
    for s in prog.attached_stmts() {
        let b = match cfg.block_of(s) {
            Some(b) => b,
            None => continue,
        };
        let mut preds: Vec<StmtId> = cd[b.index()]
            .iter()
            .filter_map(|&c| match cfg.block(c).kind {
                crate::cfg::BlockKind::LoopHeader(h) => Some(h),
                crate::cfg::BlockKind::IfCond(h) => Some(h),
                _ => None,
            })
            .collect();
        preds.sort_unstable();
        preds.dedup();
        out.insert(s, preds);
    }
    out
}

/// Structural control dependence (what the region tree encodes): the chain
/// of enclosing compound statements, with loop headers additionally
/// self-dependent (the back edge makes a loop header control its own
/// re-execution).
pub fn structural_control_deps(prog: &Program) -> HashMap<StmtId, Vec<StmtId>> {
    let mut out = HashMap::new();
    for s in prog.attached_stmts() {
        let mut deps: Vec<StmtId> = prog.ancestors(s);
        if matches!(prog.stmt(s).kind, StmtKind::DoLoop { .. }) {
            deps.push(s);
        }
        deps.sort_unstable();
        deps.dedup();
        out.insert(s, deps);
    }
    out
}

/// Does this parent role indicate a statement directly in the root body?
pub fn at_root(prog: &Program, s: StmtId) -> bool {
    prog.stmt(s).parent == Some(Parent::Root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::depend::build_ddg;
    use crate::dom;
    use pivot_lang::parser::parse;

    fn setup(src: &str) -> (Program, Ddg, Pdg) {
        let p = parse(src).unwrap();
        let ddg = build_ddg(&p);
        let pdg = Pdg::build(&p, &ddg);
        (p, ddg, pdg)
    }

    #[test]
    fn region_tree_shape_figure1() {
        let (p, _ddg, pdg) = setup(
            "D = E + F\nC = 1\ndo i = 1, 100\n  do j = 1, 50\n    A(j) = B(j) + C\n    R(i, j) = E + F\n  enddo\nenddo\n",
        );
        // Root region + loop i body + loop j body = 3 regions.
        assert_eq!(pdg.len(), 3);
        let ss = p.attached_stmts();
        assert_eq!(pdg.region_of[&ss[0]], RegionId(0));
        assert_eq!(pdg.region_of[&ss[2]], RegionId(0));
        let ri = pdg.region_of[&ss[3]]; // inner loop stmt sits in outer body region
        assert_eq!(pdg.regions[ri.index()].depth, 1);
        let rj = pdg.region_of[&ss[4]];
        assert_eq!(pdg.regions[rj.index()].depth, 2);
    }

    #[test]
    fn lcr_computation() {
        let (p, _ddg, pdg) =
            setup("do i = 1, 5\n  A(i) = 1\nenddo\ndo j = 1, 5\n  B(j) = A(j)\nenddo\n");
        let ss = p.attached_stmts();
        let (a_set, b_read) = (ss[1], ss[3]);
        // LCR of statements in the two loop bodies is the root region.
        assert_eq!(pdg.lcr(a_set, b_read), Some(RegionId(0)));
        // LCR of a statement with itself is its own region.
        assert_eq!(pdg.lcr(a_set, a_set), pdg.region_of.get(&a_set).copied());
        // LCR of a body statement and its loop is the loop's region.
        assert_eq!(pdg.lcr(ss[0], a_set), Some(RegionId(0)));
    }

    #[test]
    fn figure3_summary_on_root() {
        // Mirrors Figure 3: dep between the two loops (d2) summarized on the
        // root region; intra-loop deps summarized inside.
        let (p, ddg, pdg) = setup(
            "do i = 1, 5\n  A(i) = 1\n  x = A(i)\n  write x\nenddo\ndo j = 1, 5\n  B(j) = A(j)\nenddo\n",
        );
        let ss = p.attached_stmts();
        let a = p.symbols.get("A").unwrap();
        // Find the inter-loop dep A(i)→A(j).
        let inter = ddg
            .deps
            .iter()
            .position(|d| d.var == a && d.src == ss[1] && d.dst == ss[5])
            .expect("inter-loop dep must exist");
        assert!(pdg.summary(RegionId(0)).contains(&inter));
        // The intra-loop A-flow dep is NOT on the root.
        let intra = ddg
            .deps
            .iter()
            .position(|d| d.var == a && d.src == ss[1] && d.dst == ss[2])
            .expect("intra-loop dep must exist");
        assert!(!pdg.summary(RegionId(0)).contains(&intra));
    }

    #[test]
    fn fusion_screen_agrees_with_precise_test() {
        let legal = "do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = A(i)\nenddo\n";
        let illegal = "do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = A(i + 1)\nenddo\n";
        let disjoint = "do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = 2\nenddo\n";
        for (src, expect) in [(legal, true), (illegal, false), (disjoint, true)] {
            let (p, ddg, pdg) = setup(src);
            let got = pdg.fusion_screen(&p, &ddg, p.body[0], p.body[1]);
            assert_eq!(got, expect, "screen mismatch for:\n{src}");
            assert_eq!(
                crate::depend::fusion_dep_legal(&p, p.body[0], p.body[1]),
                expect,
                "precise test mismatch for:\n{src}"
            );
        }
    }

    #[test]
    fn cfg_control_dependence_matches_structure() {
        let src = "read x\nif (x > 0) then\n  y = 1\nelse\n  y = 2\nendif\ndo i = 1, 3\n  z = i\nenddo\nwrite y\n";
        let p = parse(src).unwrap();
        let cfgr = cfg::build(&p);
        let pdom = dom::postdominators(&cfgr);
        let from_cfg = stmt_control_deps(&p, &cfgr, &pdom);
        let structural = structural_control_deps(&p);
        for s in p.attached_stmts() {
            assert_eq!(
                from_cfg.get(&s),
                structural.get(&s),
                "control deps disagree for stmt label {}",
                p.stmt(s).label
            );
        }
    }

    #[test]
    fn loop_header_self_dependence() {
        let p = parse("do i = 1, 3\n  x = i\nenddo\n").unwrap();
        let cfgr = cfg::build(&p);
        let pdom = dom::postdominators(&cfgr);
        let cds = stmt_control_deps(&p, &cfgr, &pdom);
        let lp = p.body[0];
        // The loop header is control dependent on itself (back edge).
        assert!(cds[&lp].contains(&lp));
        // The body statement is control dependent on the header.
        let body = p.attached_stmts()[1];
        assert_eq!(cds[&body], vec![lp]);
    }

    #[test]
    fn dump_contains_regions_and_deps() {
        let (p, ddg, pdg) =
            setup("do i = 1, 5\n  A(i) = 1\nenddo\ndo j = 1, 5\n  B(j) = A(j)\nenddo\n");
        let d = pdg.dump(&p, &ddg);
        assert!(d.contains("R0"));
        assert!(d.contains("Flow"));
    }
}

//! Control flow graph construction from the structured AST.
//!
//! Every `do` header and `if` condition gets its own block; maximal runs of
//! simple statements form basic blocks. The CFG is the substrate for the
//! low-level analyses (reaching definitions, liveness, dominators) and for
//! control-dependence computation in the PDG (the paper's high-level
//! representation).

use pivot_lang::{Program, StmtId, StmtKind};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a CFG basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Role of a block, used by the PDG construction and for debugging dumps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockKind {
    /// Unique entry block (empty).
    Entry,
    /// Unique exit block (empty).
    Exit,
    /// Plain run of simple statements.
    Body,
    /// `do` loop header; holds exactly the loop statement. Has two
    /// successors: the loop body (taken while iterating) and the loop exit.
    LoopHeader(StmtId),
    /// `if` condition; holds exactly the if statement. Successors are the
    /// then-entry and else-entry (or join when a branch is empty).
    IfCond(StmtId),
    /// Empty join/latch block introduced by lowering.
    Join,
}

/// A basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Block role.
    pub kind: BlockKind,
    /// Statements executed in this block, in order. For header blocks this
    /// is the single compound statement (its header effects only).
    pub stmts: Vec<StmtId>,
    /// Successor edges.
    pub succs: Vec<BlockId>,
    /// Predecessor edges.
    pub preds: Vec<BlockId>,
}

/// Control flow graph of a program (or a subtree).
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block (no predecessors).
    pub entry: BlockId,
    /// Exit block (no successors).
    pub exit: BlockId,
    /// Map from statement to its containing block.
    pub stmt_block: HashMap<StmtId, BlockId>,
}

impl Cfg {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the graph has no blocks (never happens after `build`).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Borrow a block.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// All block ids.
    pub fn ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Block containing a statement.
    pub fn block_of(&self, s: StmtId) -> Option<BlockId> {
        self.stmt_block.get(&s).copied()
    }

    /// Reverse postorder from the entry (forward analyses iterate in this
    /// order for fast convergence).
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut order = self.postorder();
        order.reverse();
        order
    }

    /// Postorder from the entry.
    pub fn postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut out = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit phase marker.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[b.index()].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                out.push(b);
                stack.pop();
            }
        }
        out
    }

    /// Human-readable dump (tests, examples).
    pub fn dump(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for b in self.ids() {
            let blk = self.block(b);
            let _ = write!(s, "{b} {:?}", blk.kind);
            if !blk.stmts.is_empty() {
                let labels: Vec<String> = blk
                    .stmts
                    .iter()
                    .map(|&st| prog.stmt(st).label.to_string())
                    .collect();
                let _ = write!(s, " [{}]", labels.join(","));
            }
            let succs: Vec<String> = blk.succs.iter().map(|x| x.to_string()).collect();
            let _ = writeln!(s, " -> {}", succs.join(","));
        }
        s
    }
}

struct Builder<'p> {
    prog: &'p Program,
    blocks: Vec<Block>,
    stmt_block: HashMap<StmtId, BlockId>,
}

impl<'p> Builder<'p> {
    fn new_block(&mut self, kind: BlockKind) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            kind,
            stmts: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        });
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.index()].succs.push(to);
        self.blocks[to.index()].preds.push(from);
    }

    /// Lower a statement list starting in `cur`; returns the block control
    /// falls out of.
    fn lower_block(&mut self, stmts: &[StmtId], mut cur: BlockId) -> BlockId {
        for &s in stmts {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, s: StmtId, cur: BlockId) -> BlockId {
        match &self.prog.stmt(s).kind {
            StmtKind::Assign { .. } | StmtKind::Read { .. } | StmtKind::Write { .. } => {
                // Append to the current block if it is a plain body block;
                // otherwise start a new one.
                let target = if matches!(self.blocks[cur.index()].kind, BlockKind::Body) {
                    cur
                } else {
                    let b = self.new_block(BlockKind::Body);
                    self.edge(cur, b);
                    b
                };
                self.blocks[target.index()].stmts.push(s);
                self.stmt_block.insert(s, target);
                target
            }
            StmtKind::DoLoop { body, .. } => {
                let body = body.clone();
                let header = self.new_block(BlockKind::LoopHeader(s));
                self.blocks[header.index()].stmts.push(s);
                self.stmt_block.insert(s, header);
                self.edge(cur, header);
                let body_entry = self.new_block(BlockKind::Join);
                self.edge(header, body_entry);
                let body_end = self.lower_block(&body, body_entry);
                // Latch back to the header.
                self.edge(body_end, header);
                let after = self.new_block(BlockKind::Join);
                self.edge(header, after);
                after
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                let (then_body, else_body) = (then_body.clone(), else_body.clone());
                let cond = self.new_block(BlockKind::IfCond(s));
                self.blocks[cond.index()].stmts.push(s);
                self.stmt_block.insert(s, cond);
                self.edge(cur, cond);
                let join = self.new_block(BlockKind::Join);
                let then_entry = self.new_block(BlockKind::Join);
                self.edge(cond, then_entry);
                let then_end = self.lower_block(&then_body, then_entry);
                self.edge(then_end, join);
                let else_entry = self.new_block(BlockKind::Join);
                self.edge(cond, else_entry);
                let else_end = self.lower_block(&else_body, else_entry);
                self.edge(else_end, join);
                join
            }
        }
    }
}

/// Build the CFG of the whole (live) program.
pub fn build(prog: &Program) -> Cfg {
    let mut b = Builder {
        prog,
        blocks: Vec::new(),
        stmt_block: HashMap::new(),
    };
    let entry = b.new_block(BlockKind::Entry);
    let last = b.lower_block(&prog.body.clone(), entry);
    let exit = b.new_block(BlockKind::Exit);
    b.edge(last, exit);
    Cfg {
        blocks: b.blocks,
        entry,
        exit,
        stmt_block: b.stmt_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    #[test]
    fn straight_line_single_body_block() {
        let p = parse("a = 1\nb = 2\nc = 3\n").unwrap();
        let cfg = build(&p);
        // entry -> body -> exit
        assert_eq!(cfg.len(), 3);
        let body = cfg.block(BlockId(1));
        assert_eq!(body.stmts.len(), 3);
        assert_eq!(cfg.block(cfg.entry).preds.len(), 0);
        assert_eq!(cfg.block(cfg.exit).succs.len(), 0);
    }

    #[test]
    fn loop_shape() {
        let p = parse("do i = 1, 5\n  x = i\nenddo\ny = 1\n").unwrap();
        let cfg = build(&p);
        let lp = p.body[0];
        let header = cfg.block_of(lp).unwrap();
        assert!(matches!(cfg.block(header).kind, BlockKind::LoopHeader(s) if s == lp));
        // Header has two successors (body entry, after) and two preds
        // (entry-side, latch).
        assert_eq!(cfg.block(header).succs.len(), 2);
        assert_eq!(cfg.block(header).preds.len(), 2);
        // All blocks reachable; exit reachable.
        let rpo = cfg.rpo();
        assert_eq!(rpo.len(), cfg.len());
        assert_eq!(rpo[0], cfg.entry);
    }

    #[test]
    fn if_shape_with_else() {
        let p = parse("read x\nif (x > 0) then\n  y = 1\nelse\n  y = 2\nendif\nwrite y\n").unwrap();
        let cfg = build(&p);
        let iff = p.body[1];
        let cond = cfg.block_of(iff).unwrap();
        assert!(matches!(cfg.block(cond).kind, BlockKind::IfCond(_)));
        assert_eq!(cfg.block(cond).succs.len(), 2);
        // Both branch statements are in different blocks.
        let stmts = p.attached_stmts();
        let y1 = stmts[2];
        let y2 = stmts[3];
        assert_ne!(cfg.block_of(y1), cfg.block_of(y2));
    }

    #[test]
    fn empty_else_still_two_way() {
        let p = parse("if (x > 0) then\n  y = 1\nendif\n").unwrap();
        let cfg = build(&p);
        let iff = p.body[0];
        let cond = cfg.block_of(iff).unwrap();
        assert_eq!(cfg.block(cond).succs.len(), 2);
        let rpo = cfg.rpo();
        assert_eq!(rpo.len(), cfg.len());
    }

    #[test]
    fn nested_loops_all_reachable() {
        let p = parse("do i = 1, 5\n  do j = 1, 5\n    A(i, j) = 0\n  enddo\nenddo\n").unwrap();
        let cfg = build(&p);
        assert_eq!(cfg.postorder().len(), cfg.len());
        // Every attached statement is mapped to a block.
        for s in p.attached_stmts() {
            assert!(cfg.block_of(s).is_some(), "unmapped stmt {s}");
        }
    }

    #[test]
    fn edges_are_symmetric() {
        let p = parse("do i = 1, 3\n  if (i > 1) then\n    x = i\n  endif\nenddo\n").unwrap();
        let cfg = build(&p);
        for b in cfg.ids() {
            for &s in &cfg.block(b).succs {
                assert!(cfg.block(s).preds.contains(&b));
            }
            for &pd in &cfg.block(b).preds {
                assert!(cfg.block(pd).succs.contains(&b));
            }
        }
    }

    #[test]
    fn dump_is_parseable_text() {
        let p = parse("a = 1\n").unwrap();
        let cfg = build(&p);
        let d = cfg.dump(&p);
        assert!(d.contains("Entry"));
        assert!(d.contains("Exit"));
    }
}

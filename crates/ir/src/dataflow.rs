//! Generic iterative bit-vector dataflow framework.
//!
//! Forward or backward, may (union) or must (intersection) problems over
//! per-block `gen`/`kill` sets. Blocks are iterated in (reverse) postorder
//! with a worklist, the standard fast-converging scheme.

use crate::bitset::BitSet;
use crate::cfg::{BlockId, Cfg};

/// Direction of propagation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Information flows along edges (e.g. reaching definitions).
    Forward,
    /// Information flows against edges (e.g. liveness).
    Backward,
}

/// Meet operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Meet {
    /// Union — "may" problems.
    Union,
    /// Intersection — "must" problems (e.g. available expressions).
    Intersect,
}

/// A dataflow problem: universe size, per-block transfer sets, boundary
/// condition.
pub struct Problem {
    /// Propagation direction.
    pub direction: Direction,
    /// Meet operator.
    pub meet: Meet,
    /// Universe size (number of facts).
    pub universe: usize,
    /// Per-block generated facts.
    pub gen: Vec<BitSet>,
    /// Per-block killed facts.
    pub kill: Vec<BitSet>,
    /// Value at the boundary (IN of entry for forward, OUT of exit for
    /// backward).
    pub boundary: BitSet,
}

/// Solution: IN and OUT per block.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Facts at block entry.
    pub ins: Vec<BitSet>,
    /// Facts at block exit.
    pub outs: Vec<BitSet>,
}

/// Minimum CFG size before [`solve_with`] fans block evaluations out over
/// the pool. Below this the per-round spawn/steal overhead dominates the
/// µs-scale transfer functions. The threshold is a pure function of the
/// input, so which path runs — and therefore the result — never depends on
/// the schedule.
pub const PAR_MIN_BLOCKS: usize = 64;

/// Solve the problem over `cfg` to a fixed point.
pub fn solve(cfg: &Cfg, p: &Problem) -> Solution {
    let n = cfg.len();
    assert_eq!(p.gen.len(), n, "gen sets must cover all blocks");
    assert_eq!(p.kill.len(), n, "kill sets must cover all blocks");
    let init = |is_boundary: bool| -> BitSet {
        if is_boundary {
            p.boundary.clone()
        } else {
            match p.meet {
                Meet::Union => BitSet::new(p.universe),
                Meet::Intersect => {
                    let mut s = BitSet::new(p.universe);
                    s.fill();
                    s
                }
            }
        }
    };

    let (order, boundary_block) = match p.direction {
        Direction::Forward => (cfg.rpo(), cfg.entry),
        Direction::Backward => {
            let mut o = cfg.rpo();
            o.reverse();
            (o, cfg.exit)
        }
    };

    let mut ins: Vec<BitSet> = (0..n).map(|_| BitSet::new(p.universe)).collect();
    let mut outs: Vec<BitSet> = (0..n).map(|_| BitSet::new(p.universe)).collect();
    // Initialize the meet input side.
    for b in cfg.ids() {
        let v = init(b == boundary_block);
        match p.direction {
            Direction::Forward => ins[b.index()] = v,
            Direction::Backward => outs[b.index()] = v,
        }
    }

    let mut changed = true;
    let mut tmp = BitSet::new(p.universe);
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            // Meet over inputs.
            if b != boundary_block {
                let inputs: &[BlockId] = match p.direction {
                    Direction::Forward => &cfg.block(b).preds,
                    Direction::Backward => &cfg.block(b).succs,
                };
                if !inputs.is_empty() {
                    let first = inputs[0].index();
                    match p.direction {
                        Direction::Forward => tmp.copy_from(&outs[first]),
                        Direction::Backward => tmp.copy_from(&ins[first]),
                    }
                    for &q in &inputs[1..] {
                        let other = match p.direction {
                            Direction::Forward => &outs[q.index()],
                            Direction::Backward => &ins[q.index()],
                        };
                        match p.meet {
                            Meet::Union => {
                                tmp.union_with(other);
                            }
                            Meet::Intersect => {
                                tmp.intersect_with(other);
                            }
                        }
                    }
                    let dst = match p.direction {
                        Direction::Forward => &mut ins[bi],
                        Direction::Backward => &mut outs[bi],
                    };
                    if *dst != tmp {
                        dst.copy_from(&tmp);
                        changed = true;
                    }
                }
            }
            // Transfer: OUT = gen ∪ (IN − kill)   (or IN for backward).
            let (src, dst) = match p.direction {
                Direction::Forward => (&ins[bi], &mut outs[bi]),
                Direction::Backward => (&outs[bi], &mut ins[bi]),
            };
            tmp.copy_from(src);
            tmp.subtract(&p.kill[bi]);
            tmp.union_with(&p.gen[bi]);
            if *dst != tmp {
                dst.copy_from(&tmp);
                changed = true;
            }
        }
    }
    Solution { ins, outs }
}

/// Solve the problem over `cfg`, partitioning the worklist over `pool`
/// when the CFG is large enough ([`PAR_MIN_BLOCKS`]).
///
/// The parallel path is a block-partitioned (additive-Schwarz) iteration:
/// the (reverse) postorder is split into one contiguous partition per
/// worker, and each round every worker runs the sequential Gauss–Seidel
/// worklist to a *local* fixpoint inside its own partition, reading
/// frontier values from an immutable snapshot of the previous round.
/// Updated partitions are merged positionally at a barrier and rounds
/// repeat until nothing changes. Both solvers are chaotic iterations of
/// the same monotone equations from the same initial value, so both
/// converge to the identical (unique) extreme-fixpoint solution — the
/// partitioning changes only how fast information crosses partition
/// frontiers (one edge per round), not where it settles. Sequential pools
/// take the [`solve`] path untouched.
pub fn solve_with(cfg: &Cfg, p: &Problem, pool: &pivot_par::Pool) -> Solution {
    if pool.is_sequential() || cfg.len() < PAR_MIN_BLOCKS {
        return solve(cfg, p);
    }
    solve_partitioned(cfg, p, pool)
}

/// The block-partitioned parallel solver behind [`solve_with`].
fn solve_partitioned(cfg: &Cfg, p: &Problem, pool: &pivot_par::Pool) -> Solution {
    let n = cfg.len();
    assert_eq!(p.gen.len(), n, "gen sets must cover all blocks");
    assert_eq!(p.kill.len(), n, "kill sets must cover all blocks");
    let init = |is_boundary: bool| -> BitSet {
        if is_boundary {
            p.boundary.clone()
        } else {
            match p.meet {
                Meet::Union => BitSet::new(p.universe),
                Meet::Intersect => {
                    let mut s = BitSet::new(p.universe);
                    s.fill();
                    s
                }
            }
        }
    };
    let (order, boundary_block) = match p.direction {
        Direction::Forward => (cfg.rpo(), cfg.entry),
        Direction::Backward => {
            let mut o = cfg.rpo();
            o.reverse();
            (o, cfg.exit)
        }
    };
    let mut ins: Vec<BitSet> = (0..n).map(|_| BitSet::new(p.universe)).collect();
    let mut outs: Vec<BitSet> = (0..n).map(|_| BitSet::new(p.universe)).collect();
    for b in cfg.ids() {
        let v = init(b == boundary_block);
        match p.direction {
            Direction::Forward => ins[b.index()] = v,
            Direction::Backward => outs[b.index()] = v,
        }
    }

    // Contiguous partitions of the iteration order, one per worker;
    // `owner`/`order_pos` let a worker tell local neighbors (read from its
    // in-progress local values) apart from frontier neighbors (read from
    // the previous round's snapshot).
    let nparts = pool.threads().min(order.len()).max(1);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(nparts);
    let base = order.len() / nparts;
    let extra = order.len() % nparts;
    let mut lo = 0usize;
    for ci in 0..nparts {
        let len = base + usize::from(ci < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    let mut owner = vec![usize::MAX; n];
    let mut order_pos = vec![usize::MAX; n];
    for (ci, &(lo, hi)) in ranges.iter().enumerate() {
        for (pos, &b) in order.iter().enumerate().take(hi).skip(lo) {
            owner[b.index()] = ci;
            order_pos[b.index()] = pos;
        }
    }

    let mut rounds = 0u64;
    let mut changed = true;
    while changed {
        rounds += 1;
        let snap_ins = ins.clone();
        let snap_outs = outs.clone();
        // One round: every partition runs its own Gauss–Seidel worklist to a
        // local fixpoint against the frozen frontier snapshot.
        let next: Vec<Vec<(BitSet, BitSet)>> = {
            let order = &order;
            let ranges = &ranges;
            let owner = &owner;
            let order_pos = &order_pos;
            let snap_ins = &snap_ins;
            let snap_outs = &snap_outs;
            pool.run(nparts, |ci| {
                let (lo, hi) = ranges[ci];
                let mut loc: Vec<(BitSet, BitSet)> = (lo..hi)
                    .map(|pos| {
                        let bi = order[pos].index();
                        (snap_ins[bi].clone(), snap_outs[bi].clone())
                    })
                    .collect();
                let mut tmp = BitSet::new(p.universe);
                let mut local_changed = true;
                while local_changed {
                    local_changed = false;
                    for li in 0..loc.len() {
                        let b = order[lo + li];
                        let bi = b.index();
                        // Meet over inputs: local neighbors come from `loc`,
                        // frontier neighbors from the round snapshot.
                        if b != boundary_block {
                            let inputs: &[BlockId] = match p.direction {
                                Direction::Forward => &cfg.block(b).preds,
                                Direction::Backward => &cfg.block(b).succs,
                            };
                            if !inputs.is_empty() {
                                let read = |q: BlockId, tmp: &mut BitSet, first: bool| {
                                    let qi = q.index();
                                    let v = if owner[qi] == ci {
                                        let lq = &loc[order_pos[qi] - lo];
                                        match p.direction {
                                            Direction::Forward => &lq.1,
                                            Direction::Backward => &lq.0,
                                        }
                                    } else {
                                        match p.direction {
                                            Direction::Forward => &snap_outs[qi],
                                            Direction::Backward => &snap_ins[qi],
                                        }
                                    };
                                    if first {
                                        tmp.copy_from(v);
                                    } else {
                                        match p.meet {
                                            Meet::Union => {
                                                tmp.union_with(v);
                                            }
                                            Meet::Intersect => {
                                                tmp.intersect_with(v);
                                            }
                                        }
                                    }
                                };
                                let mut meet_val = BitSet::new(p.universe);
                                read(inputs[0], &mut meet_val, true);
                                for &q in &inputs[1..] {
                                    read(q, &mut meet_val, false);
                                }
                                let dst = match p.direction {
                                    Direction::Forward => &mut loc[li].0,
                                    Direction::Backward => &mut loc[li].1,
                                };
                                if *dst != meet_val {
                                    dst.copy_from(&meet_val);
                                    local_changed = true;
                                }
                            }
                        }
                        // Transfer: OUT = gen ∪ (IN − kill) (or IN, backward).
                        match p.direction {
                            Direction::Forward => tmp.copy_from(&loc[li].0),
                            Direction::Backward => tmp.copy_from(&loc[li].1),
                        }
                        tmp.subtract(&p.kill[bi]);
                        tmp.union_with(&p.gen[bi]);
                        let xfer_dst = match p.direction {
                            Direction::Forward => &mut loc[li].1,
                            Direction::Backward => &mut loc[li].0,
                        };
                        if *xfer_dst != tmp {
                            xfer_dst.copy_from(&tmp);
                            local_changed = true;
                        }
                    }
                }
                loc
            })
        };
        changed = false;
        for (ci, part) in next.into_iter().enumerate() {
            let (lo, _) = ranges[ci];
            for (li, (new_in, new_out)) in part.into_iter().enumerate() {
                let bi = order[lo + li].index();
                if ins[bi] != new_in {
                    ins[bi] = new_in;
                    changed = true;
                }
                if outs[bi] != new_out {
                    outs[bi] = new_out;
                    changed = true;
                }
            }
        }
    }
    let m = pivot_obs::metrics::global();
    m.counter("par.df.solves").inc();
    m.counter("par.df.rounds").add(rounds);
    Solution { ins, outs }
}

/// Statistics from a dirty-restart re-solve ([`resolve_dirty`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RestartStats {
    /// Blocks whose transfer functions changed (the dirty seed).
    pub dirty_blocks: usize,
    /// Blocks in the direction-aware cone of influence that were re-solved.
    pub cone_blocks: usize,
    /// Block transfer evaluations performed until the fixpoint was reached.
    pub worklist_iters: u64,
}

/// Re-solve `p` over `cfg`, starting from a previous `sol` of which only the
/// blocks in `dirty` have changed transfer functions.
///
/// The cone of influence — every block reachable from a dirty block along
/// the propagation direction — is reset to the framework's initial value
/// (⊥ for union, ⊤ for intersection) and re-iterated; blocks outside the
/// cone keep their old values and act as a fixed boundary. A clean block's
/// dataflow equation has no changed transfer function upstream of it, so its
/// old value is still its fixpoint value; the cone, restarted from the
/// initial value against that boundary, converges to exactly the restriction
/// of the global fixpoint. Restarting from the *stale* values instead would
/// be unsound for deletions: a too-large (union) or too-small (intersection)
/// consistent point can survive iteration.
///
/// `sol` must already be shaped for `p` (same block count, bitsets over
/// `p.universe`): the caller remaps fact numberings before calling.
pub fn resolve_dirty(
    cfg: &Cfg,
    p: &Problem,
    sol: &mut Solution,
    dirty: &[BlockId],
) -> RestartStats {
    let n = cfg.len();
    assert_eq!(p.gen.len(), n, "gen sets must cover all blocks");
    assert_eq!(p.kill.len(), n, "kill sets must cover all blocks");
    // Direction-aware cone of influence.
    let mut in_cone = vec![false; n];
    let mut stack: Vec<BlockId> = Vec::new();
    for &b in dirty {
        if !in_cone[b.index()] {
            in_cone[b.index()] = true;
            stack.push(b);
        }
    }
    while let Some(b) = stack.pop() {
        let nexts: &[BlockId] = match p.direction {
            Direction::Forward => &cfg.block(b).succs,
            Direction::Backward => &cfg.block(b).preds,
        };
        for &q in nexts {
            if !in_cone[q.index()] {
                in_cone[q.index()] = true;
                stack.push(q);
            }
        }
    }
    let (order, boundary_block) = match p.direction {
        Direction::Forward => (cfg.rpo(), cfg.entry),
        Direction::Backward => {
            let mut o = cfg.rpo();
            o.reverse();
            (o, cfg.exit)
        }
    };
    let order: Vec<BlockId> = order.into_iter().filter(|b| in_cone[b.index()]).collect();
    // Reset the cone to the initial value on both sides; the meet-input side
    // of the boundary block keeps the boundary condition.
    let init = || -> BitSet {
        match p.meet {
            Meet::Union => BitSet::new(p.universe),
            Meet::Intersect => {
                let mut s = BitSet::new(p.universe);
                s.fill();
                s
            }
        }
    };
    for &b in &order {
        let bi = b.index();
        sol.ins[bi] = init();
        sol.outs[bi] = init();
        if b == boundary_block {
            let v = p.boundary.clone();
            match p.direction {
                Direction::Forward => sol.ins[bi] = v,
                Direction::Backward => sol.outs[bi] = v,
            }
        }
    }
    let mut stats = RestartStats {
        dirty_blocks: dirty.len(),
        cone_blocks: order.len(),
        worklist_iters: 0,
    };
    let mut changed = true;
    let mut tmp = BitSet::new(p.universe);
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            stats.worklist_iters += 1;
            if b != boundary_block {
                let inputs: &[BlockId] = match p.direction {
                    Direction::Forward => &cfg.block(b).preds,
                    Direction::Backward => &cfg.block(b).succs,
                };
                if !inputs.is_empty() {
                    let first = inputs[0].index();
                    match p.direction {
                        Direction::Forward => tmp.copy_from(&sol.outs[first]),
                        Direction::Backward => tmp.copy_from(&sol.ins[first]),
                    }
                    for &q in &inputs[1..] {
                        let other = match p.direction {
                            Direction::Forward => &sol.outs[q.index()],
                            Direction::Backward => &sol.ins[q.index()],
                        };
                        match p.meet {
                            Meet::Union => {
                                tmp.union_with(other);
                            }
                            Meet::Intersect => {
                                tmp.intersect_with(other);
                            }
                        }
                    }
                    let dst = match p.direction {
                        Direction::Forward => &mut sol.ins[bi],
                        Direction::Backward => &mut sol.outs[bi],
                    };
                    if *dst != tmp {
                        dst.copy_from(&tmp);
                        changed = true;
                    }
                }
            }
            let (src, dst) = match p.direction {
                Direction::Forward => (&sol.ins[bi], &mut sol.outs[bi]),
                Direction::Backward => (&sol.outs[bi], &mut sol.ins[bi]),
            };
            tmp.copy_from(src);
            tmp.subtract(&p.kill[bi]);
            tmp.union_with(&p.gen[bi]);
            if *dst != tmp {
                dst.copy_from(&tmp);
                changed = true;
            }
        }
    }
    stats
}

/// Warm restart: re-propagate from `dirty` over the *existing* solution
/// without resetting anything. Returns the blocks whose meet-input value
/// (ins for forward, outs for backward) changed.
///
/// Soundness: this is exact only when every transfer-function change can
/// only *grow* a union-meet solution — each gen set grew or stayed, each
/// kill set shrank or stayed (per remaining fact). The old solution is then
/// a pre-fixpoint of the new equations and chaotic iteration from it
/// converges to exactly the new least fixpoint. Reaching definitions after
/// a pure statement removal is the motivating case: a removed definition
/// can only un-kill other facts and expose earlier definitions. Callers
/// must use [`resolve_dirty`] whenever the change can shrink the solution.
pub fn resolve_warm(
    cfg: &Cfg,
    p: &Problem,
    sol: &mut Solution,
    dirty: &[BlockId],
) -> (RestartStats, Vec<BlockId>) {
    let n = cfg.len();
    assert_eq!(p.gen.len(), n, "gen sets must cover all blocks");
    assert_eq!(p.kill.len(), n, "kill sets must cover all blocks");
    let boundary_block = match p.direction {
        Direction::Forward => cfg.entry,
        Direction::Backward => cfg.exit,
    };
    let mut stats = RestartStats {
        dirty_blocks: dirty.len(),
        cone_blocks: 0,
        worklist_iters: 0,
    };
    let mut visited = vec![false; n];
    let mut input_changed = vec![false; n];
    let mut queued = vec![false; n];
    let mut queue: std::collections::VecDeque<BlockId> = std::collections::VecDeque::new();
    for &b in dirty {
        if !queued[b.index()] {
            queued[b.index()] = true;
            queue.push_back(b);
        }
    }
    let mut tmp = BitSet::new(p.universe);
    while let Some(b) = queue.pop_front() {
        let bi = b.index();
        queued[bi] = false;
        if !visited[bi] {
            visited[bi] = true;
            stats.cone_blocks += 1;
        }
        stats.worklist_iters += 1;
        if b != boundary_block {
            let inputs: &[BlockId] = match p.direction {
                Direction::Forward => &cfg.block(b).preds,
                Direction::Backward => &cfg.block(b).succs,
            };
            if !inputs.is_empty() {
                let first = inputs[0].index();
                match p.direction {
                    Direction::Forward => tmp.copy_from(&sol.outs[first]),
                    Direction::Backward => tmp.copy_from(&sol.ins[first]),
                }
                for &q in &inputs[1..] {
                    let other = match p.direction {
                        Direction::Forward => &sol.outs[q.index()],
                        Direction::Backward => &sol.ins[q.index()],
                    };
                    match p.meet {
                        Meet::Union => {
                            tmp.union_with(other);
                        }
                        Meet::Intersect => {
                            tmp.intersect_with(other);
                        }
                    }
                }
                let dst = match p.direction {
                    Direction::Forward => &mut sol.ins[bi],
                    Direction::Backward => &mut sol.outs[bi],
                };
                if *dst != tmp {
                    dst.copy_from(&tmp);
                    input_changed[bi] = true;
                }
            }
        }
        let (src, dst) = match p.direction {
            Direction::Forward => (&sol.ins[bi], &mut sol.outs[bi]),
            Direction::Backward => (&sol.outs[bi], &mut sol.ins[bi]),
        };
        tmp.copy_from(src);
        tmp.subtract(&p.kill[bi]);
        tmp.union_with(&p.gen[bi]);
        if *dst != tmp {
            dst.copy_from(&tmp);
            let nexts: &[BlockId] = match p.direction {
                Direction::Forward => &cfg.block(b).succs,
                Direction::Backward => &cfg.block(b).preds,
            };
            for &q in nexts {
                if !queued[q.index()] {
                    queued[q.index()] = true;
                    queue.push_back(q);
                }
            }
        }
    }
    let changed = (0..n)
        .filter(|&i| input_changed[i])
        .map(|i| BlockId(i as u32))
        .collect();
    (stats, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use pivot_lang::parser::parse;

    /// A tiny hand-rolled "constant reachability" forward-may problem: fact k
    /// generated in the block containing statement labelled k+1.
    #[test]
    fn forward_may_propagates_through_loop() {
        let p = parse("a = 1\ndo i = 1, 3\n  b = 2\nenddo\nc = 3\n").unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let stmts = p.attached_stmts();
        let universe = stmts.len();
        let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        for (k, &s) in stmts.iter().enumerate() {
            if let Some(b) = cfg.block_of(s) {
                gen[b.index()].insert(k);
            }
        }
        let prob = Problem {
            direction: Direction::Forward,
            meet: Meet::Union,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        let sol = solve(&cfg, &prob);
        // At exit, every fact has been generated on some path.
        let exit_in = &sol.ins[cfg.exit.index()];
        assert_eq!(exit_in.count(), universe);
        // Fact for `c = 3` (index 3) must NOT reach the loop body.
        let body_b = cfg.block_of(stmts[2]).unwrap();
        assert!(!sol.ins[body_b.index()].contains(3));
        // Fact for `b = 2` reaches the loop header via the latch.
        let header_b = cfg.block_of(stmts[1]).unwrap();
        assert!(sol.ins[header_b.index()].contains(2));
    }

    #[test]
    fn intersect_meet_requires_all_paths() {
        let p = parse("read x\nif (x > 0) then\n  a = 1\nelse\n  b = 2\nendif\nc = 3\n").unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let stmts = p.attached_stmts();
        let universe = stmts.len();
        let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        for (k, &s) in stmts.iter().enumerate() {
            if let Some(b) = cfg.block_of(s) {
                gen[b.index()].insert(k);
            }
        }
        let prob = Problem {
            direction: Direction::Forward,
            meet: Meet::Intersect,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        let sol = solve(&cfg, &prob);
        let c_b = cfg.block_of(stmts[4]).unwrap();
        let at_c = &sol.ins[c_b.index()];
        // read x (0) and the if header (1) are on all paths...
        assert!(at_c.contains(0));
        assert!(at_c.contains(1));
        // ...but each branch arm is only on one path.
        assert!(!at_c.contains(2));
        assert!(!at_c.contains(3));
    }

    /// Build the per-statement "constant reachability" problem used by the
    /// forward test, returning (cfg, problem, stmts).
    fn stmt_fact_problem(
        src: &str,
        direction: Direction,
        meet: Meet,
    ) -> (Cfg, Problem, Vec<pivot_lang::StmtId>) {
        let p = parse(src).unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let stmts = p.attached_stmts();
        let universe = stmts.len();
        let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        for (k, &s) in stmts.iter().enumerate() {
            if let Some(b) = cfg.block_of(s) {
                gen[b.index()].insert(k);
            }
        }
        let prob = Problem {
            direction,
            meet,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        (cfg, prob, stmts)
    }

    /// Perturbing one block's transfer and restarting from the dirty block
    /// must agree with a full re-solve — including when facts are *removed*
    /// (the case a stale warm start gets wrong).
    #[test]
    fn dirty_restart_matches_full_solve() {
        let src = "a = 1\ndo i = 1, 3\n  b = 2\nenddo\nc = 3\n";
        for (dir, meet) in [
            (Direction::Forward, Meet::Union),
            (Direction::Forward, Meet::Intersect),
            (Direction::Backward, Meet::Union),
        ] {
            let (cfg, mut prob, stmts) = stmt_fact_problem(src, dir, meet);
            let mut sol = solve(&cfg, &prob);
            // Remove the loop-body fact and add a new one in the same block.
            let body_b = cfg.block_of(stmts[2]).unwrap();
            prob.gen[body_b.index()].remove(2);
            prob.gen[body_b.index()].insert(0);
            let stats = resolve_dirty(&cfg, &prob, &mut sol, &[body_b]);
            let full = solve(&cfg, &prob);
            assert_eq!(sol.ins, full.ins, "{dir:?}/{meet:?} ins diverged");
            assert_eq!(sol.outs, full.outs, "{dir:?}/{meet:?} outs diverged");
            assert!(stats.cone_blocks >= 1);
            assert!(stats.cone_blocks <= cfg.len());
        }
    }

    /// A growth-only perturbation (gen grows, kill shrinks) warm-restarted
    /// from the dirty block must agree with a full re-solve, and the
    /// changed list must name exactly the blocks whose ins moved.
    #[test]
    fn warm_restart_matches_full_solve_on_growth() {
        let src = "a = 1\ndo i = 1, 3\n  b = 2\nenddo\nc = 3\n";
        for dir in [Direction::Forward, Direction::Backward] {
            let (cfg, mut prob, stmts) = stmt_fact_problem(src, dir, Meet::Union);
            let mut sol = solve(&cfg, &prob);
            let before = sol.clone();
            let body_b = cfg.block_of(stmts[2]).unwrap();
            prob.gen[body_b.index()].insert(0);
            let (stats, changed) = resolve_warm(&cfg, &prob, &mut sol, &[body_b]);
            let full = solve(&cfg, &prob);
            assert_eq!(sol.ins, full.ins, "{dir:?} ins diverged");
            assert_eq!(sol.outs, full.outs, "{dir:?} outs diverged");
            assert!(stats.worklist_iters >= 1);
            let meet_side = |s: &Solution, i: usize| match dir {
                Direction::Forward => s.ins[i].clone(),
                Direction::Backward => s.outs[i].clone(),
            };
            for b in cfg.ids() {
                let moved = meet_side(&before, b.index()) != meet_side(&sol, b.index());
                assert_eq!(
                    changed.contains(&b),
                    moved,
                    "{dir:?} changed list wrong at {b}"
                );
            }
        }
    }

    /// Warm restart with an empty dirty set is a no-op.
    #[test]
    fn warm_restart_empty_is_noop() {
        let (cfg, prob, _) = stmt_fact_problem("a = 1\nb = 2\n", Direction::Forward, Meet::Union);
        let mut sol = solve(&cfg, &prob);
        let before = sol.clone();
        let (stats, changed) = resolve_warm(&cfg, &prob, &mut sol, &[]);
        assert_eq!(sol.ins, before.ins);
        assert_eq!(sol.outs, before.outs);
        assert_eq!(stats.cone_blocks, 0);
        assert!(changed.is_empty());
    }

    /// An empty dirty set leaves the solution untouched.
    #[test]
    fn dirty_restart_empty_is_noop() {
        let (cfg, prob, _) = stmt_fact_problem("a = 1\nb = 2\n", Direction::Forward, Meet::Union);
        let mut sol = solve(&cfg, &prob);
        let before = sol.clone();
        let stats = resolve_dirty(&cfg, &prob, &mut sol, &[]);
        assert_eq!(sol.ins, before.ins);
        assert_eq!(sol.outs, before.outs);
        assert_eq!(stats.cone_blocks, 0);
    }

    /// Dirtying the entry block re-solves everything forward-reachable,
    /// which is the whole graph — still identical to a batch solve.
    #[test]
    fn dirty_restart_from_entry_covers_graph() {
        let (cfg, prob, _) = stmt_fact_problem(
            "read x\nif (x > 0) then\n  a = 1\nelse\n  b = 2\nendif\nc = 3\n",
            Direction::Forward,
            Meet::Union,
        );
        let mut sol = solve(&cfg, &prob);
        let stats = resolve_dirty(&cfg, &prob, &mut sol, &[cfg.entry]);
        let full = solve(&cfg, &prob);
        assert_eq!(sol.ins, full.ins);
        assert_eq!(sol.outs, full.outs);
        assert_eq!(stats.cone_blocks, cfg.len());
    }

    /// The block-partitioned parallel solver must reach the exact fixpoint
    /// of the sequential Gauss–Seidel sweep, for every direction/meet
    /// combination, on a CFG large enough to actually take the parallel
    /// path.
    #[test]
    fn partitioned_solver_matches_gauss_seidel() {
        let mut src = String::from("read c\n");
        for i in 0..24 {
            src.push_str(&format!(
                "if (c > {i}) then\n  a = a + 1\nelse\n  b = b + 1\nendif\ndo i = 1, 3\n  s = s + a\nenddo\n"
            ));
        }
        for (dir, meet) in [
            (Direction::Forward, Meet::Union),
            (Direction::Forward, Meet::Intersect),
            (Direction::Backward, Meet::Union),
            (Direction::Backward, Meet::Intersect),
        ] {
            let (cfg, prob, _) = stmt_fact_problem(&src, dir, meet);
            assert!(
                cfg.len() >= PAR_MIN_BLOCKS,
                "test CFG too small to exercise the parallel path"
            );
            let seq = solve(&cfg, &prob);
            for threads in [2, 4, 8] {
                let par = solve_with(&cfg, &prob, &pivot_par::Pool::new(threads));
                assert_eq!(seq.ins, par.ins, "{dir:?}/{meet:?} ins at {threads}t");
                assert_eq!(seq.outs, par.outs, "{dir:?}/{meet:?} outs at {threads}t");
            }
        }
    }

    /// Below the block threshold (or with a sequential pool) `solve_with`
    /// is exactly `solve`.
    #[test]
    fn solve_with_sequential_paths() {
        let (cfg, prob, _) = stmt_fact_problem("a = 1\nb = 2\n", Direction::Forward, Meet::Union);
        let seq = solve(&cfg, &prob);
        let small = solve_with(&cfg, &prob, &pivot_par::Pool::new(4));
        let inline = solve_with(&cfg, &prob, &pivot_par::Pool::sequential());
        assert_eq!(seq.ins, small.ins);
        assert_eq!(seq.ins, inline.ins);
        assert_eq!(seq.outs, small.outs);
        assert_eq!(seq.outs, inline.outs);
    }

    #[test]
    fn backward_propagation() {
        let p = parse("a = 1\nb = 2\n").unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let universe = 1usize;
        let gen: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut s = BitSet::new(universe);
                if BlockId(i as u32) == cfg.exit {
                    s.insert(0);
                }
                s
            })
            .collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let prob = Problem {
            direction: Direction::Backward,
            meet: Meet::Union,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        let sol = solve(&cfg, &prob);
        // The fact generated at exit flows backwards to the entry.
        assert!(sol.ins[cfg.entry.index()].contains(0));
    }
}

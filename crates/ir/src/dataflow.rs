//! Generic iterative bit-vector dataflow framework.
//!
//! Forward or backward, may (union) or must (intersection) problems over
//! per-block `gen`/`kill` sets. Blocks are iterated in (reverse) postorder
//! with a worklist, the standard fast-converging scheme.

use crate::bitset::BitSet;
use crate::cfg::{BlockId, Cfg};

/// Direction of propagation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Information flows along edges (e.g. reaching definitions).
    Forward,
    /// Information flows against edges (e.g. liveness).
    Backward,
}

/// Meet operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Meet {
    /// Union — "may" problems.
    Union,
    /// Intersection — "must" problems (e.g. available expressions).
    Intersect,
}

/// A dataflow problem: universe size, per-block transfer sets, boundary
/// condition.
pub struct Problem {
    /// Propagation direction.
    pub direction: Direction,
    /// Meet operator.
    pub meet: Meet,
    /// Universe size (number of facts).
    pub universe: usize,
    /// Per-block generated facts.
    pub gen: Vec<BitSet>,
    /// Per-block killed facts.
    pub kill: Vec<BitSet>,
    /// Value at the boundary (IN of entry for forward, OUT of exit for
    /// backward).
    pub boundary: BitSet,
}

/// Solution: IN and OUT per block.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Facts at block entry.
    pub ins: Vec<BitSet>,
    /// Facts at block exit.
    pub outs: Vec<BitSet>,
}

/// Solve the problem over `cfg` to a fixed point.
pub fn solve(cfg: &Cfg, p: &Problem) -> Solution {
    let n = cfg.len();
    assert_eq!(p.gen.len(), n, "gen sets must cover all blocks");
    assert_eq!(p.kill.len(), n, "kill sets must cover all blocks");
    let init = |is_boundary: bool| -> BitSet {
        if is_boundary {
            p.boundary.clone()
        } else {
            match p.meet {
                Meet::Union => BitSet::new(p.universe),
                Meet::Intersect => {
                    let mut s = BitSet::new(p.universe);
                    s.fill();
                    s
                }
            }
        }
    };

    let (order, boundary_block) = match p.direction {
        Direction::Forward => (cfg.rpo(), cfg.entry),
        Direction::Backward => {
            let mut o = cfg.rpo();
            o.reverse();
            (o, cfg.exit)
        }
    };

    let mut ins: Vec<BitSet> = (0..n).map(|_| BitSet::new(p.universe)).collect();
    let mut outs: Vec<BitSet> = (0..n).map(|_| BitSet::new(p.universe)).collect();
    // Initialize the meet input side.
    for b in cfg.ids() {
        let v = init(b == boundary_block);
        match p.direction {
            Direction::Forward => ins[b.index()] = v,
            Direction::Backward => outs[b.index()] = v,
        }
    }

    let mut changed = true;
    let mut tmp = BitSet::new(p.universe);
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            // Meet over inputs.
            if b != boundary_block {
                let inputs: &[BlockId] = match p.direction {
                    Direction::Forward => &cfg.block(b).preds,
                    Direction::Backward => &cfg.block(b).succs,
                };
                if !inputs.is_empty() {
                    let first = inputs[0].index();
                    match p.direction {
                        Direction::Forward => tmp.copy_from(&outs[first]),
                        Direction::Backward => tmp.copy_from(&ins[first]),
                    }
                    for &q in &inputs[1..] {
                        let other = match p.direction {
                            Direction::Forward => &outs[q.index()],
                            Direction::Backward => &ins[q.index()],
                        };
                        match p.meet {
                            Meet::Union => {
                                tmp.union_with(other);
                            }
                            Meet::Intersect => {
                                tmp.intersect_with(other);
                            }
                        }
                    }
                    let dst = match p.direction {
                        Direction::Forward => &mut ins[bi],
                        Direction::Backward => &mut outs[bi],
                    };
                    if *dst != tmp {
                        dst.copy_from(&tmp);
                        changed = true;
                    }
                }
            }
            // Transfer: OUT = gen ∪ (IN − kill)   (or IN for backward).
            let (src, dst) = match p.direction {
                Direction::Forward => (&ins[bi], &mut outs[bi]),
                Direction::Backward => (&outs[bi], &mut ins[bi]),
            };
            tmp.copy_from(src);
            tmp.subtract(&p.kill[bi]);
            tmp.union_with(&p.gen[bi]);
            if *dst != tmp {
                dst.copy_from(&tmp);
                changed = true;
            }
        }
    }
    Solution { ins, outs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use pivot_lang::parser::parse;

    /// A tiny hand-rolled "constant reachability" forward-may problem: fact k
    /// generated in the block containing statement labelled k+1.
    #[test]
    fn forward_may_propagates_through_loop() {
        let p = parse("a = 1\ndo i = 1, 3\n  b = 2\nenddo\nc = 3\n").unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let stmts = p.attached_stmts();
        let universe = stmts.len();
        let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        for (k, &s) in stmts.iter().enumerate() {
            if let Some(b) = cfg.block_of(s) {
                gen[b.index()].insert(k);
            }
        }
        let prob = Problem {
            direction: Direction::Forward,
            meet: Meet::Union,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        let sol = solve(&cfg, &prob);
        // At exit, every fact has been generated on some path.
        let exit_in = &sol.ins[cfg.exit.index()];
        assert_eq!(exit_in.count(), universe);
        // Fact for `c = 3` (index 3) must NOT reach the loop body.
        let body_b = cfg.block_of(stmts[2]).unwrap();
        assert!(!sol.ins[body_b.index()].contains(3));
        // Fact for `b = 2` reaches the loop header via the latch.
        let header_b = cfg.block_of(stmts[1]).unwrap();
        assert!(sol.ins[header_b.index()].contains(2));
    }

    #[test]
    fn intersect_meet_requires_all_paths() {
        let p = parse("read x\nif (x > 0) then\n  a = 1\nelse\n  b = 2\nendif\nc = 3\n").unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let stmts = p.attached_stmts();
        let universe = stmts.len();
        let mut gen: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        for (k, &s) in stmts.iter().enumerate() {
            if let Some(b) = cfg.block_of(s) {
                gen[b.index()].insert(k);
            }
        }
        let prob = Problem {
            direction: Direction::Forward,
            meet: Meet::Intersect,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        let sol = solve(&cfg, &prob);
        let c_b = cfg.block_of(stmts[4]).unwrap();
        let at_c = &sol.ins[c_b.index()];
        // read x (0) and the if header (1) are on all paths...
        assert!(at_c.contains(0));
        assert!(at_c.contains(1));
        // ...but each branch arm is only on one path.
        assert!(!at_c.contains(2));
        assert!(!at_c.contains(3));
    }

    #[test]
    fn backward_propagation() {
        let p = parse("a = 1\nb = 2\n").unwrap();
        let cfg = build(&p);
        let n = cfg.len();
        let universe = 1usize;
        let gen: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut s = BitSet::new(universe);
                if BlockId(i as u32) == cfg.exit {
                    s.insert(0);
                }
                s
            })
            .collect();
        let kill: Vec<BitSet> = (0..n).map(|_| BitSet::new(universe)).collect();
        let prob = Problem {
            direction: Direction::Backward,
            meet: Meet::Union,
            universe,
            gen,
            kill,
            boundary: BitSet::new(universe),
        };
        let sol = solve(&cfg, &prob);
        // The fact generated at exit flows backwards to the entry.
        assert!(sol.ins[cfg.entry.index()].contains(0));
    }
}

//! Def-use and use-def chains.
//!
//! Built on reaching definitions: for every use `(stmt, sym)` the set of
//! definitions that may reach it, and the inverse map. The paper's legality
//! rule — "a legal optimization … cannot interfere or sever definition-use
//! chains" — is enforced by the transformation layer using exactly these
//! chains.

use crate::access::stmt_def_use;
use crate::cfg::Cfg;
use crate::reaching::ReachingDefs;
use pivot_lang::{Program, StmtId, Sym};
use std::collections::HashMap;

/// Def-use / use-def chains.
#[derive(Clone, Debug, Default)]
pub struct Chains {
    /// For each use site `(stmt, sym)`: the definitions possibly supplying it.
    pub ud: HashMap<(StmtId, Sym), Vec<StmtId>>,
    /// For each def site `(stmt, sym)`: the uses it possibly supplies.
    pub du: HashMap<(StmtId, Sym), Vec<StmtId>>,
}

/// Compute chains for the whole live program. Each block is walked once,
/// threading the reaching set through its statements.
pub fn compute(prog: &Program, cfg: &Cfg, rd: &ReachingDefs) -> Chains {
    let mut chains = Chains::default();
    for b in cfg.ids() {
        let mut reach = rd.sol.ins[b.index()].clone();
        for &s in &cfg.block(b).stmts {
            let du = stmt_def_use(prog, s);
            // Record uses against current reaching defs.
            for &sym in du.use_scalars.iter().chain(&du.use_arrays) {
                if let Some(facts) = rd.by_sym.get(&sym) {
                    for &f in facts {
                        if reach.contains(f) {
                            let d = rd.sites[f].stmt;
                            chains.ud.entry((s, sym)).or_default().push(d);
                            chains.du.entry((d, sym)).or_default().push(s);
                        }
                    }
                }
            }
            // Apply the statement's transfer.
            for sym in du.def_scalars {
                if let Some(facts) = rd.by_sym.get(&sym) {
                    for &f in facts {
                        if rd.sites[f].stmt != s {
                            reach.remove(f);
                        }
                    }
                }
                if let Some(&f) = rd.site_index.get(&(s, sym)) {
                    reach.insert(f);
                }
            }
            for sym in du.def_arrays {
                if let Some(&f) = rd.site_index.get(&(s, sym)) {
                    reach.insert(f);
                }
            }
        }
    }
    for v in chains.ud.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    for v in chains.du.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    chains
}

impl Chains {
    /// The unique definition reaching use `(stmt, sym)`, if exactly one.
    pub fn sole_def(&self, stmt: StmtId, sym: Sym) -> Option<StmtId> {
        match self.ud.get(&(stmt, sym)).map(Vec::as_slice) {
            Some([d]) => Some(*d),
            _ => None,
        }
    }

    /// All uses supplied by the definition of `sym` at `stmt`.
    pub fn uses_of(&self, stmt: StmtId, sym: Sym) -> &[StmtId] {
        self.du.get(&(stmt, sym)).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::reaching;
    use pivot_lang::parser::parse;

    fn setup(src: &str) -> (Program, Chains) {
        let p = parse(src).unwrap();
        let cfg = build(&p);
        let rd = reaching::compute(&p, &cfg);
        let ch = compute(&p, &cfg, &rd);
        (p, ch)
    }

    #[test]
    fn simple_chain() {
        let (p, ch) = setup("x = 1\ny = x + x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert_eq!(ch.sole_def(ss[1], x), Some(ss[0]));
        assert_eq!(ch.uses_of(ss[0], x), &[ss[1]]);
    }

    #[test]
    fn two_defs_no_sole_def() {
        let (p, ch) = setup("read c\nif (c > 0) then\n  x = 1\nelse\n  x = 2\nendif\ny = x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert_eq!(ch.sole_def(ss[4], x), None);
        let mut defs = ch.ud.get(&(ss[4], x)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[2], ss[3]]);
    }

    #[test]
    fn dead_def_has_no_uses() {
        let (p, ch) = setup("x = 1\nx = 2\nwrite x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert!(ch.uses_of(ss[0], x).is_empty());
        assert_eq!(ch.uses_of(ss[1], x), &[ss[2]]);
    }

    #[test]
    fn loop_carried_chain() {
        let (p, ch) = setup("s = 0\ndo i = 1, 5\n  s = s + i\nenddo\nwrite s\n");
        let ss = p.attached_stmts();
        let s_sym = p.symbols.get("s").unwrap();
        // The accumulation both uses the init def and its own previous value.
        let mut defs = ch.ud.get(&(ss[2], s_sym)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[2]]);
        // The write sees both defs too.
        let mut defs = ch.ud.get(&(ss[3], s_sym)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[2]]);
    }

    #[test]
    fn induction_variable_chain() {
        let (p, ch) = setup("do i = 1, 5\n  x = i\nenddo\n");
        let ss = p.attached_stmts();
        let i = p.symbols.get("i").unwrap();
        assert_eq!(ch.sole_def(ss[1], i), Some(ss[0]));
    }

    #[test]
    fn array_use_links_all_may_defs() {
        let (p, ch) = setup("A(1) = 1\nA(2) = 2\nwrite A(1)\n");
        let ss = p.attached_stmts();
        let a = p.symbols.get("A").unwrap();
        let mut defs = ch.ud.get(&(ss[2], a)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[1]]);
    }

    #[test]
    fn subscript_use_in_lvalue() {
        let (p, ch) = setup("i = 3\nA(i) = 7\n");
        let ss = p.attached_stmts();
        let i = p.symbols.get("i").unwrap();
        assert_eq!(ch.sole_def(ss[1], i), Some(ss[0]));
    }
}

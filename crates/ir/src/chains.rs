//! Def-use and use-def chains.
//!
//! Built on reaching definitions: for every use `(stmt, sym)` the set of
//! definitions that may reach it, and the inverse map. The paper's legality
//! rule — "a legal optimization … cannot interfere or sever definition-use
//! chains" — is enforced by the transformation layer using exactly these
//! chains.

use crate::access::stmt_def_use;
use crate::cfg::Cfg;
use crate::reaching::ReachingDefs;
use pivot_lang::{Program, StmtId, Sym};
use std::collections::HashMap;

/// Def-use / use-def chains.
#[derive(Clone, Debug, Default)]
pub struct Chains {
    /// For each use site `(stmt, sym)`: the definitions possibly supplying it.
    pub ud: HashMap<(StmtId, Sym), Vec<StmtId>>,
    /// For each def site `(stmt, sym)`: the uses it possibly supplies.
    pub du: HashMap<(StmtId, Sym), Vec<StmtId>>,
}

/// Chain links contributed by one block: `((key_stmt, sym), linked_stmt)`
/// pairs for the `ud` and `du` maps respectively, in walk order.
type BlockLinks = (Vec<((StmtId, Sym), StmtId)>, Vec<((StmtId, Sym), StmtId)>);

/// Compute chains for the whole live program (sequentially). Each block is
/// walked once, threading the reaching set through its statements.
pub fn compute(prog: &Program, cfg: &Cfg, rd: &ReachingDefs) -> Chains {
    compute_with(prog, cfg, rd, &pivot_par::Pool::sequential())
}

/// Compute chains, fanning the per-block walks out over `pool` when the
/// CFG is large enough. A block's links are a pure function of the block
/// and the (immutable) reaching solution; the per-block link lists come
/// back positionally and are merged into the maps in block order — the
/// exact insertion sequence of the sequential walk — so the result is
/// identical to [`compute`] at any thread count.
pub fn compute_with(
    prog: &Program,
    cfg: &Cfg,
    rd: &ReachingDefs,
    pool: &pivot_par::Pool,
) -> Chains {
    let n = cfg.len();
    let per_block: Vec<BlockLinks> = if pool.is_sequential() || n < crate::dataflow::PAR_MIN_BLOCKS
    {
        cfg.ids().map(|b| walk_block(prog, cfg, rd, b)).collect()
    } else {
        pool.run(n, |i| {
            walk_block(prog, cfg, rd, crate::cfg::BlockId(i as u32))
        })
    };
    let mut chains = Chains::default();
    for (ud, du) in per_block {
        merge_links(&mut chains, ud, du);
    }
    for v in chains.ud.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    for v in chains.du.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    chains
}

/// Append one block's links to the chain maps (lists are not yet
/// sorted/deduped).
fn merge_links(
    chains: &mut Chains,
    ud: Vec<((StmtId, Sym), StmtId)>,
    du: Vec<((StmtId, Sym), StmtId)>,
) {
    for (k, v) in ud {
        chains.ud.entry(k).or_default().push(v);
    }
    for (k, v) in du {
        chains.du.entry(k).or_default().push(v);
    }
}

/// Walk one block, threading the reaching set through its statements and
/// emitting its use/def links in walk order.
fn walk_block(prog: &Program, cfg: &Cfg, rd: &ReachingDefs, b: crate::cfg::BlockId) -> BlockLinks {
    let mut ud_links: Vec<((StmtId, Sym), StmtId)> = Vec::new();
    let mut du_links: Vec<((StmtId, Sym), StmtId)> = Vec::new();
    let mut reach = rd.sol.ins[b.index()].clone();
    for &s in &cfg.block(b).stmts {
        let du = stmt_def_use(prog, s);
        // Record uses against current reaching defs.
        for &sym in du.use_scalars.iter().chain(&du.use_arrays) {
            if let Some(facts) = rd.by_sym.get(&sym) {
                for &f in facts {
                    if reach.contains(f) {
                        let d = rd.sites[f].stmt;
                        ud_links.push(((s, sym), d));
                        du_links.push(((d, sym), s));
                    }
                }
            }
        }
        // Apply the statement's transfer.
        for sym in du.def_scalars {
            if let Some(facts) = rd.by_sym.get(&sym) {
                for &f in facts {
                    if rd.sites[f].stmt != s {
                        reach.remove(f);
                    }
                }
            }
            if let Some(&f) = rd.site_index.get(&(s, sym)) {
                reach.insert(f);
            }
        }
        for sym in du.def_arrays {
            if let Some(&f) = rd.site_index.get(&(s, sym)) {
                reach.insert(f);
            }
        }
    }
    (ud_links, du_links)
}

/// Localized recomputation: rebuild the chain entries contributed by
/// `blocks` (blocks whose statements or reaching-in sets changed), purging
/// links to `removed` (now-detached) statements everywhere.
///
/// Soundness: `ud` is keyed by the use's statement, and a statement sits in
/// exactly one block, so dropping keys owned by the re-walked blocks (plus
/// removed statements) and re-walking those blocks reconstructs every entry
/// that could have changed. `du` is the exact inverse relation: its lists
/// are filtered of the same uses before the walk re-adds them. A def whose
/// fact disappeared loses its last uses in that filter — the caller must
/// include every block whose reaching-IN contained the vanished fact in
/// `blocks` — leaving an empty list that is dropped.
pub fn patch(
    chains: &mut Chains,
    prog: &Program,
    cfg: &Cfg,
    rd: &ReachingDefs,
    blocks: &[crate::cfg::BlockId],
    removed: &[StmtId],
) {
    let mut stale: std::collections::HashSet<StmtId> = removed.iter().copied().collect();
    for &b in blocks {
        stale.extend(cfg.block(b).stmts.iter().copied());
    }
    chains.ud.retain(|(s, _), _| !stale.contains(s));
    for v in chains.du.values_mut() {
        v.retain(|u| !stale.contains(u));
    }
    chains.du.retain(|_, v| !v.is_empty());
    let mut fresh = Chains::default();
    for &b in blocks {
        let (ud, du) = walk_block(prog, cfg, rd, b);
        merge_links(&mut fresh, ud, du);
    }
    for (k, mut v) in fresh.ud {
        v.sort_unstable();
        v.dedup();
        chains.ud.insert(k, v);
    }
    for (k, v) in fresh.du {
        let dst = chains.du.entry(k).or_default();
        dst.extend(v);
        dst.sort_unstable();
        dst.dedup();
    }
}

/// [`patch`] specialized for updates where every block's reaching-in set
/// is a **superset** of its old one (the expression-rewrite fast path,
/// where the solution is unchanged, and the warm-restart tail of
/// [`patch_removal`], where it only grew). Under that precondition the
/// only definitions whose `du` lists can mention a statement of `blocks`
/// are the facts reaching those blocks plus the definitions inside them —
/// filter exactly those lists instead of sweeping the whole map.
pub(crate) fn patch_local(
    chains: &mut Chains,
    prog: &Program,
    cfg: &Cfg,
    rd: &ReachingDefs,
    blocks: &[crate::cfg::BlockId],
) {
    let mut stale: std::collections::HashSet<StmtId> = std::collections::HashSet::new();
    for &b in blocks {
        stale.extend(cfg.block(b).stmts.iter().copied());
    }
    chains.ud.retain(|(s, _), _| !stale.contains(s));
    // Candidate defs: reaching-in facts of the re-walked blocks, plus every
    // def *inside* them (a def killed later in its own block is absent from
    // gen yet still supplies the uses between itself and the kill).
    let mut cand: Vec<(StmtId, Sym)> = Vec::new();
    for &b in blocks {
        for f in rd.sol.ins[b.index()].iter() {
            let d = &rd.sites[f];
            cand.push((d.stmt, d.sym));
        }
        for &s in &cfg.block(b).stmts {
            let du = stmt_def_use(prog, s);
            for sym in du.def_scalars.into_iter().chain(du.def_arrays) {
                cand.push((s, sym));
            }
        }
    }
    cand.sort_unstable();
    cand.dedup();
    for key in cand {
        if let Some(v) = chains.du.get_mut(&key) {
            v.retain(|u| !stale.contains(u));
            if v.is_empty() {
                chains.du.remove(&key);
            }
        }
    }
    let mut fresh = Chains::default();
    for &b in blocks {
        let (ud, du) = walk_block(prog, cfg, rd, b);
        merge_links(&mut fresh, ud, du);
    }
    for (k, mut v) in fresh.ud {
        v.sort_unstable();
        v.dedup();
        chains.ud.insert(k, v);
    }
    for (k, v) in fresh.du {
        let dst = chains.du.entry(k).or_default();
        dst.extend(v);
        dst.sort_unstable();
        dst.dedup();
    }
}

/// [`patch`] specialized for deltas whose reaching solution could only have
/// *grown* (removal-only deltas solved by a warm restart). Links to
/// `removed` statements and `vanished` definitions are purged surgically
/// through the chain maps themselves: a removed use's `ud` lists name
/// exactly the `du` lists it appears in, and a vanished def's `du` list
/// names exactly the `ud` entries that mention it. Blocks that merely
/// *contained* a vanished fact therefore need no re-walk — `blocks` covers
/// only the blocks whose statements or reaching-in sets changed. Growth
/// also keeps the candidate filter of [`patch_local`] sound here: a block's
/// old suppliers are a subset of its new reaching-in facts.
pub(crate) fn patch_removal(
    chains: &mut Chains,
    prog: &Program,
    cfg: &Cfg,
    rd: &ReachingDefs,
    blocks: &[crate::cfg::BlockId],
    removed: &[StmtId],
    vanished: &[(StmtId, Sym)],
) {
    // Removed statements as uses: drop their ud entries, and unlink them
    // from the du list of every def that supplied them.
    let removed_set: std::collections::HashSet<StmtId> = removed.iter().copied().collect();
    let mut dropped: Vec<(Sym, Vec<StmtId>)> = Vec::new();
    chains.ud.retain(|&(s, sym), defs| {
        if removed_set.contains(&s) {
            dropped.push((sym, std::mem::take(defs)));
            false
        } else {
            true
        }
    });
    for (sym, defs) in dropped {
        for d in defs {
            if let Some(v) = chains.du.get_mut(&(d, sym)) {
                v.retain(|u| !removed_set.contains(u));
                if v.is_empty() {
                    chains.du.remove(&(d, sym));
                }
            }
        }
    }
    // Vanished definitions: drop their du entries, and unlink them from the
    // ud list of every use they supplied.
    for &(d, sym) in vanished {
        if let Some(uses) = chains.du.remove(&(d, sym)) {
            for u in uses {
                if let Some(v) = chains.ud.get_mut(&(u, sym)) {
                    v.retain(|&x| x != d);
                    if v.is_empty() {
                        chains.ud.remove(&(u, sym));
                    }
                }
            }
        }
    }
    patch_local(chains, prog, cfg, rd, blocks);
}

impl Chains {
    /// The unique definition reaching use `(stmt, sym)`, if exactly one.
    pub fn sole_def(&self, stmt: StmtId, sym: Sym) -> Option<StmtId> {
        match self.ud.get(&(stmt, sym)).map(Vec::as_slice) {
            Some([d]) => Some(*d),
            _ => None,
        }
    }

    /// All uses supplied by the definition of `sym` at `stmt`.
    pub fn uses_of(&self, stmt: StmtId, sym: Sym) -> &[StmtId] {
        self.du.get(&(stmt, sym)).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::reaching;
    use pivot_lang::parser::parse;

    fn setup(src: &str) -> (Program, Chains) {
        let p = parse(src).unwrap();
        let cfg = build(&p);
        let rd = reaching::compute(&p, &cfg);
        let ch = compute(&p, &cfg, &rd);
        (p, ch)
    }

    #[test]
    fn simple_chain() {
        let (p, ch) = setup("x = 1\ny = x + x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert_eq!(ch.sole_def(ss[1], x), Some(ss[0]));
        assert_eq!(ch.uses_of(ss[0], x), &[ss[1]]);
    }

    #[test]
    fn two_defs_no_sole_def() {
        let (p, ch) = setup("read c\nif (c > 0) then\n  x = 1\nelse\n  x = 2\nendif\ny = x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert_eq!(ch.sole_def(ss[4], x), None);
        let mut defs = ch.ud.get(&(ss[4], x)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[2], ss[3]]);
    }

    #[test]
    fn dead_def_has_no_uses() {
        let (p, ch) = setup("x = 1\nx = 2\nwrite x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert!(ch.uses_of(ss[0], x).is_empty());
        assert_eq!(ch.uses_of(ss[1], x), &[ss[2]]);
    }

    #[test]
    fn loop_carried_chain() {
        let (p, ch) = setup("s = 0\ndo i = 1, 5\n  s = s + i\nenddo\nwrite s\n");
        let ss = p.attached_stmts();
        let s_sym = p.symbols.get("s").unwrap();
        // The accumulation both uses the init def and its own previous value.
        let mut defs = ch.ud.get(&(ss[2], s_sym)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[2]]);
        // The write sees both defs too.
        let mut defs = ch.ud.get(&(ss[3], s_sym)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[2]]);
    }

    #[test]
    fn induction_variable_chain() {
        let (p, ch) = setup("do i = 1, 5\n  x = i\nenddo\n");
        let ss = p.attached_stmts();
        let i = p.symbols.get("i").unwrap();
        assert_eq!(ch.sole_def(ss[1], i), Some(ss[0]));
    }

    #[test]
    fn array_use_links_all_may_defs() {
        let (p, ch) = setup("A(1) = 1\nA(2) = 2\nwrite A(1)\n");
        let ss = p.attached_stmts();
        let a = p.symbols.get("A").unwrap();
        let mut defs = ch.ud.get(&(ss[2], a)).cloned().unwrap();
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[1]]);
    }

    #[test]
    fn patch_all_blocks_matches_compute() {
        let p = parse("s = 0\ndo i = 1, 5\n  s = s + i\nenddo\nwrite s\n").unwrap();
        let cfg = build(&p);
        let rd = reaching::compute(&p, &cfg);
        let full = compute(&p, &cfg, &rd);
        // Start from a deliberately wrong state and patch every block.
        let mut patched = full.clone();
        patched
            .ud
            .insert((p.attached_stmts()[0], p.symbols.get("s").unwrap()), vec![]);
        let blocks: Vec<_> = cfg.ids().collect();
        patch(&mut patched, &p, &cfg, &rd, &blocks, &[]);
        assert_eq!(full.ud, patched.ud);
        assert_eq!(full.du, patched.du);
    }

    /// The parallel per-block walk must rebuild exactly the sequential
    /// maps on a CFG large enough to take the parallel path.
    #[test]
    fn parallel_compute_matches_sequential() {
        let mut src = String::from("read c\ns = 0\n");
        for i in 0..24 {
            src.push_str(&format!(
                "if (c > {i}) then\n  s = s + c\nelse\n  c = c + 1\nendif\ndo i = 1, 3\n  s = s + i\nenddo\n"
            ));
        }
        src.push_str("write s\n");
        let p = parse(&src).unwrap();
        let cfg = build(&p);
        assert!(cfg.len() >= crate::dataflow::PAR_MIN_BLOCKS);
        let rd = reaching::compute(&p, &cfg);
        let seq = compute(&p, &cfg, &rd);
        for threads in [2, 4, 8] {
            let par = compute_with(&p, &cfg, &rd, &pivot_par::Pool::new(threads));
            assert_eq!(seq.ud, par.ud, "ud diverged at {threads} threads");
            assert_eq!(seq.du, par.du, "du diverged at {threads} threads");
        }
    }

    #[test]
    fn subscript_use_in_lvalue() {
        let (p, ch) = setup("i = 3\nA(i) = 7\n");
        let ss = p.attached_stmts();
        let i = p.symbols.get("i").unwrap();
        assert_eq!(ch.sole_def(ss[1], i), Some(ss[0]));
    }
}

//! Live-variable analysis.
//!
//! Backward may-analysis over symbols (scalars, and arrays at whole-array
//! granularity). Only definite (scalar) definitions kill liveness; an array
//! store never kills its array. Nothing is live at program exit: the only
//! observables are `write` statements, which appear as uses.
//!
//! This is the safety oracle for dead code elimination (Table 3, DCE row):
//! a scalar assignment is dead iff its target is not live after it.

use crate::access::stmt_def_use;
use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dataflow::{solve_with, Direction, Meet, Problem, Solution, PAR_MIN_BLOCKS};
use pivot_lang::{Program, StmtId, Sym};

/// Liveness analysis result. Facts are symbol indices ([`Sym::index`]).
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Block-level solution.
    pub sol: Solution,
    /// Per-block generated facts (kept for incremental re-solves).
    pub gen: Vec<BitSet>,
    /// Per-block killed facts (kept for incremental re-solves).
    pub kill: Vec<BitSet>,
    universe: usize,
}

/// Compute liveness over the CFG (sequentially).
pub fn compute(prog: &Program, cfg: &Cfg) -> Liveness {
    compute_with(prog, cfg, &pivot_par::Pool::sequential())
}

/// Compute liveness over the CFG, fanning the per-block transfer
/// composition and the dataflow rounds out over `pool` when the CFG is
/// large enough. Bit-identical to [`compute`] at any thread count: transfer
/// sets are per-block pure functions collected positionally, and
/// [`solve_with`] reaches the identical fixpoint.
pub fn compute_with(prog: &Program, cfg: &Cfg, pool: &pivot_par::Pool) -> Liveness {
    let universe = prog.symbols.len();
    let n = cfg.len();
    // Compose each block backwards: statements in reverse order.
    let block_gk = |b: crate::cfg::BlockId| -> (BitSet, BitSet) {
        let mut g = BitSet::new(universe);
        let mut k = BitSet::new(universe);
        for &s in cfg.block(b).stmts.iter().rev() {
            apply_stmt_backward(prog, s, &mut g, &mut k);
        }
        (g, k)
    };
    let mut gen: Vec<BitSet> = Vec::with_capacity(n);
    let mut kill: Vec<BitSet> = Vec::with_capacity(n);
    let pairs = if pool.is_sequential() || n < PAR_MIN_BLOCKS {
        cfg.ids().map(block_gk).collect()
    } else {
        pool.run(n, |i| block_gk(crate::cfg::BlockId(i as u32)))
    };
    for (g, k) in pairs {
        gen.push(g);
        kill.push(k);
    }
    let prob = Problem {
        direction: Direction::Backward,
        meet: Meet::Union,
        universe,
        gen,
        kill,
        boundary: BitSet::new(universe),
    };
    let sol = solve_with(cfg, &prob, pool);
    Liveness {
        sol,
        gen: prob.gen,
        kill: prob.kill,
        universe,
    }
}

/// live_before = (live_after − definite_defs) ∪ uses, applied to running
/// (gen, kill) composition.
fn apply_stmt_backward(prog: &Program, s: StmtId, gen: &mut BitSet, kill: &mut BitSet) {
    let du = stmt_def_use(prog, s);
    for sym in du.def_scalars {
        gen.remove(sym.index());
        kill.insert(sym.index());
    }
    for sym in du.use_scalars.iter().chain(&du.use_arrays) {
        gen.insert(sym.index());
        kill.remove(sym.index());
    }
    // Array defs neither gen nor kill (may-defs); their subscript uses are
    // already in `use_scalars`.
}

impl Liveness {
    /// Universe size (number of interned symbols at analysis time).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Grow the fact universe to the current symbol count (the interner only
    /// appends, so old symbol indices stay valid) and recompute the transfer
    /// sets of the given dirty blocks. Part of the incremental update; the
    /// solution bitsets are resized but not re-solved here.
    pub fn grow_and_redo(&mut self, prog: &Program, cfg: &Cfg, dirty: &[crate::cfg::BlockId]) {
        let universe = prog.symbols.len();
        if universe != self.universe {
            self.universe = universe;
            for s in self
                .gen
                .iter_mut()
                .chain(&mut self.kill)
                .chain(&mut self.sol.ins)
                .chain(&mut self.sol.outs)
            {
                s.resize(universe);
            }
        }
        for &b in dirty {
            let g = &mut self.gen[b.index()];
            let k = &mut self.kill[b.index()];
            g.clear();
            k.clear();
            for &s in cfg.block(b).stmts.iter().rev() {
                apply_stmt_backward(prog, s, g, k);
            }
        }
    }

    /// Symbols live immediately **after** statement `s`.
    pub fn live_after(&self, prog: &Program, cfg: &Cfg, s: StmtId) -> BitSet {
        let b = cfg.block_of(s).expect("statement must be in the CFG");
        let mut cur = self.sol.outs[b.index()].clone();
        let mut gen = BitSet::new(self.universe);
        let mut kill = BitSet::new(self.universe);
        let stmts = &cfg.block(b).stmts;
        for &t in stmts.iter().rev() {
            if t == s {
                break;
            }
            apply_stmt_backward(prog, t, &mut gen, &mut kill);
        }
        cur.subtract(&kill);
        cur.union_with(&gen);
        cur
    }

    /// Is `sym` live immediately after `s`?
    pub fn is_live_after(&self, prog: &Program, cfg: &Cfg, s: StmtId, sym: Sym) -> bool {
        self.live_after(prog, cfg, s).contains(sym.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use pivot_lang::parser::parse;

    fn setup(src: &str) -> (Program, Cfg, Liveness) {
        let p = parse(src).unwrap();
        let cfg = build(&p);
        let lv = compute(&p, &cfg);
        (p, cfg, lv)
    }

    #[test]
    fn dead_when_never_used() {
        let (p, cfg, lv) = setup("x = 1\ny = 2\nwrite y\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        let y = p.symbols.get("y").unwrap();
        assert!(!lv.is_live_after(&p, &cfg, ss[0], x));
        assert!(lv.is_live_after(&p, &cfg, ss[1], y));
    }

    #[test]
    fn dead_when_overwritten_before_use() {
        let (p, cfg, lv) = setup("x = 1\nx = 2\nwrite x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert!(!lv.is_live_after(&p, &cfg, ss[0], x));
        assert!(lv.is_live_after(&p, &cfg, ss[1], x));
    }

    #[test]
    fn live_through_branch() {
        let (p, cfg, lv) = setup("x = 1\nread c\nif (c > 0) then\n  write x\nendif\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        // x is (may-)live after its def: one path uses it.
        assert!(lv.is_live_after(&p, &cfg, ss[0], x));
    }

    #[test]
    fn loop_carried_liveness() {
        let (p, cfg, lv) = setup("s = 0\ndo i = 1, 5\n  s = s + i\nenddo\nwrite s\n");
        let ss = p.attached_stmts();
        let s_sym = p.symbols.get("s").unwrap();
        // After the accumulation statement, s is live (next iteration or exit).
        assert!(lv.is_live_after(&p, &cfg, ss[2], s_sym));
        assert!(lv.is_live_after(&p, &cfg, ss[0], s_sym));
    }

    #[test]
    fn array_store_does_not_kill() {
        let (p, cfg, lv) = setup("A(1) = 1\nA(2) = 2\nwrite A(1)\n");
        let ss = p.attached_stmts();
        let a = p.symbols.get("A").unwrap();
        assert!(lv.is_live_after(&p, &cfg, ss[0], a));
        assert!(lv.is_live_after(&p, &cfg, ss[1], a));
    }

    #[test]
    fn subscripts_are_uses() {
        let (p, cfg, lv) = setup("i = 1\nA(i) = 0\n write A(1)\n");
        let ss = p.attached_stmts();
        let i = p.symbols.get("i").unwrap();
        assert!(lv.is_live_after(&p, &cfg, ss[0], i));
    }

    #[test]
    fn loop_bounds_are_uses() {
        let (p, cfg, lv) = setup("n = 10\ndo i = 1, n\n  x = i\nenddo\nwrite x\n");
        let ss = p.attached_stmts();
        let n = p.symbols.get("n").unwrap();
        assert!(lv.is_live_after(&p, &cfg, ss[0], n));
    }

    #[test]
    fn nothing_live_at_exit_without_writes() {
        let (p, cfg, lv) = setup("x = 1\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert!(!lv.is_live_after(&p, &cfg, ss[0], x));
    }
}

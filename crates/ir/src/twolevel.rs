//! The two-level program representation (paper, Section 3).
//!
//! [`Rep`] bundles the low level (CFG, DAGs, scalar dataflow) and the high
//! level (DDG, PDG with region summaries) over one [`Program`], so
//! optimizing and parallelizing transformations can be freely intermixed and
//! each can consult the level it needs. The transformation layer adds
//! history annotations on top (making the DAG an ADAG and the PDG an APDG).
//!
//! `Rep` is a derived artifact: it is (re)built from the program, never
//! edited directly. The undo engine rebuilds it after structural changes —
//! what the paper calls `Dependence_and_data_flow_update` (Figure 4,
//! line 13).

use crate::avail::{self, AvailExprs};
use crate::cfg::{self, Cfg};
use crate::chains::{self, Chains};
use crate::dag::{self, BlockDag};
use crate::depend::{self, Ddg};
use crate::dom::{self, DomTree};
use crate::live::{self, Liveness};
use crate::pdg::Pdg;
use crate::reaching::{self, ReachingDefs};
use pivot_lang::{Program, StmtId};
use std::collections::HashMap;
use std::fmt;

/// A representation rebuild refused to run: the program failed its
/// structural invariant check, so the analyses would be built over garbage.
/// The undo engine treats this as a phase fault and rolls the transaction
/// back instead of propagating a corrupt representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RebuildError {
    /// The invariant violations reported by the program.
    pub violations: Vec<String>,
}

impl fmt::Display for RebuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "representation rebuild refused: {}",
            self.violations.join("; ")
        )
    }
}

impl std::error::Error for RebuildError {}

/// The integrated two-level representation.
#[derive(Clone, Debug)]
pub struct Rep {
    /// Control flow graph (low level).
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Postdominator tree.
    pub pdom: DomTree,
    /// Reaching definitions.
    pub reach: ReachingDefs,
    /// Live variables.
    pub live: Liveness,
    /// Available expressions (lazy: only candidate discovery and the DAG
    /// demos consume it).
    avail: std::sync::OnceLock<AvailExprs>,
    /// Def-use / use-def chains.
    pub chains: Chains,
    /// High-level layer (DDG + PDG with region summaries), built lazily on
    /// first use: the scalar transformations and their undo paths never
    /// touch it, so apply-heavy sessions skip the most expensive analysis.
    high: std::sync::OnceLock<(Ddg, Pdg)>,
    /// Pre-order position of every attached statement.
    pub pos: HashMap<StmtId, usize>,
    /// How many times this representation has been (re)built — benches use
    /// this to count `Dependence_and_data_flow_update` work.
    pub builds: u64,
    /// How many times this representation was updated incrementally (delta
    /// refreshes that did *not* trigger a batch rebuild).
    pub incr_updates: u64,
}

impl Rep {
    /// Build the representation for the current program. The low-level
    /// layer (CFG, dominators, scalar dataflow, chains) is built eagerly;
    /// the high-level layer (DDG, PDG) on first access via
    /// [`Rep::ddg`]/[`Rep::pdg`].
    pub fn build(prog: &Program) -> Rep {
        Rep::build_with(prog, &pivot_par::Pool::sequential())
    }

    /// [`Rep::build`] with the analysis layers fanned out over `pool`:
    /// the (post)dominator pair runs concurrently with the dataflow pair,
    /// and reaching/live/chains additionally shard their per-block work
    /// through the pool. Every layer is a pure function of the program, so
    /// the built representation is identical at any thread count.
    pub fn build_with(prog: &Program, pool: &pivot_par::Pool) -> Rep {
        let t0 = std::time::Instant::now();
        let cfg = cfg::build(prog);
        let ((dom, pdom), (reach, live)) = pool.join(
            || (dom::dominators(&cfg), dom::postdominators(&cfg)),
            || {
                pool.join(
                    || reaching::compute_with(prog, &cfg, pool),
                    || live::compute_with(prog, &cfg, pool),
                )
            },
        );
        let chains = chains::compute_with(prog, &cfg, &reach, pool);
        let pos = prog
            .attached_stmts()
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, i))
            .collect();
        let m = pivot_obs::metrics::global();
        m.counter("rep.builds").inc();
        m.histogram("rep.build_ns").record(t0.elapsed());
        Rep {
            cfg,
            dom,
            pdom,
            reach,
            live,
            avail: std::sync::OnceLock::new(),
            chains,
            high: std::sync::OnceLock::new(),
            pos,
            builds: 1,
            incr_updates: 0,
        }
    }

    /// Drop the lazily-built layers (available expressions, DDG/PDG) so
    /// they are recomputed on next access. Called by the incremental
    /// updater, which maintains the eager layers in place.
    pub(crate) fn invalidate_lazy(&mut self) {
        self.avail = std::sync::OnceLock::new();
        self.high = std::sync::OnceLock::new();
    }

    /// Available expressions (built on first access).
    pub fn avail(&self, prog: &Program) -> &AvailExprs {
        self.avail.get_or_init(|| avail::compute(prog, &self.cfg))
    }

    fn high(&self, prog: &Program) -> &(Ddg, Pdg) {
        self.high.get_or_init(|| {
            let t0 = std::time::Instant::now();
            let ddg = depend::build_ddg(prog);
            let pdg = Pdg::build(prog, &ddg);
            let m = pivot_obs::metrics::global();
            m.counter("rep.high.builds").inc();
            m.histogram("rep.high.build_ns").record(t0.elapsed());
            (ddg, pdg)
        })
    }

    /// The data dependence graph (built on first access).
    pub fn ddg(&self, prog: &Program) -> &Ddg {
        &self.high(prog).0
    }

    /// The PDG with region summaries (built on first access).
    pub fn pdg(&self, prog: &Program) -> &Pdg {
        &self.high(prog).1
    }

    /// Rebuild after a program change (`Dependence_and_data_flow_update`).
    pub fn refresh(&mut self, prog: &Program) {
        self.refresh_with(prog, &pivot_par::Pool::sequential());
    }

    /// [`Rep::refresh`] with the rebuild fanned out over `pool`
    /// ([`Rep::build_with`]).
    pub fn refresh_with(&mut self, prog: &Program, pool: &pivot_par::Pool) {
        let builds = self.builds + 1;
        let incr_updates = self.incr_updates;
        *self = Rep::build_with(prog, pool);
        self.builds = builds;
        self.incr_updates = incr_updates;
    }

    /// Build a replacement representation for `prog`, carrying this one's
    /// build/incremental counters forward (exactly like [`Rep::refresh_with`],
    /// but returning the rebuilt value instead of overwriting `self`). This
    /// is the batch path for engines that hold the representation behind a
    /// shared handle (`Arc<Rep>`): constructing the replacement and swapping
    /// the handle avoids the deep copy that mutating a shared `Rep` in place
    /// would force, while live snapshots keep the old representation intact.
    pub fn rebuilt_with(&self, prog: &Program, pool: &pivot_par::Pool) -> Rep {
        let mut fresh = Rep::build_with(prog, pool);
        fresh.builds = self.builds + 1;
        fresh.incr_updates = self.incr_updates;
        fresh
    }

    /// [`Rep::rebuilt_with`] behind the same structural-invariant screen as
    /// [`Rep::try_refresh_with`]: refuses (building nothing) when the
    /// program's invariants do not hold.
    pub fn try_rebuilt_with(
        &self,
        prog: &Program,
        pool: &pivot_par::Pool,
    ) -> Result<Rep, RebuildError> {
        let violations = prog.check_invariants();
        if !violations.is_empty() {
            return Err(RebuildError { violations });
        }
        Ok(self.rebuilt_with(prog, pool))
    }

    /// Fallible rebuild: validate the program's structural invariants first
    /// and refuse (without touching `self`) when they do not hold. This is
    /// the rebuild the transactional engine calls — a refusal aborts the
    /// surrounding transaction instead of baking a corrupt program into the
    /// analyses.
    pub fn try_refresh(&mut self, prog: &Program) -> Result<(), RebuildError> {
        self.try_refresh_with(prog, &pivot_par::Pool::sequential())
    }

    /// [`Rep::try_refresh`] with the rebuild fanned out over `pool`.
    pub fn try_refresh_with(
        &mut self,
        prog: &Program,
        pool: &pivot_par::Pool,
    ) -> Result<(), RebuildError> {
        let violations = prog.check_invariants();
        if !violations.is_empty() {
            return Err(RebuildError { violations });
        }
        self.refresh_with(prog, pool);
        Ok(())
    }

    /// Delta-driven refresh: attempt an incremental update of the eager
    /// layers and fall back to a batch rebuild when the CFG shape changed.
    /// Invariants are validated exactly as in [`Rep::try_refresh`]. The
    /// outcome reports which path ran so the engine can count and trace
    /// fallbacks — an incremental success does **not** bump
    /// [`Rep::builds`]; it bumps [`Rep::incr_updates`] instead.
    pub fn try_refresh_delta(
        &mut self,
        prog: &Program,
        delta: &crate::incr::EditDelta,
    ) -> Result<crate::incr::RefreshOutcome, RebuildError> {
        let violations = prog.check_invariants();
        if !violations.is_empty() {
            return Err(RebuildError { violations });
        }
        let t0 = std::time::Instant::now();
        match crate::incr::update(self, prog, delta) {
            Ok(stats) => {
                self.incr_updates += 1;
                let m = pivot_obs::metrics::global();
                m.counter("rep.incr.updates").inc();
                m.counter("rep.incr.dirty_blocks")
                    .add(stats.dirty_blocks as u64);
                m.counter("rep.incr.total_blocks")
                    .add(stats.total_blocks as u64);
                m.counter("rep.incr.worklist_iters")
                    .add(stats.worklist_iters);
                m.histogram("rep.incr.update_ns").record(t0.elapsed());
                Ok(crate::incr::RefreshOutcome::Incremental(stats))
            }
            Err(reason) => {
                pivot_obs::metrics::global()
                    .counter("rep.incr.fallback")
                    .inc();
                self.refresh(prog);
                Ok(crate::incr::RefreshOutcome::Fallback(reason))
            }
        }
    }

    /// Textual (pre-order) position of a statement, if attached.
    pub fn position(&self, s: StmtId) -> Option<usize> {
        self.pos.get(&s).copied()
    }

    /// Does statement `a` precede `b` in program pre-order?
    pub fn before(&self, a: StmtId, b: StmtId) -> bool {
        match (self.position(a), self.position(b)) {
            (Some(x), Some(y)) => x < y,
            _ => false,
        }
    }

    /// Does statement `a` dominate statement `b`? (Every execution of `b` is
    /// preceded by an execution of `a`.) Within one block, order decides.
    pub fn stmt_dominates(&self, a: StmtId, b: StmtId) -> bool {
        let (ba, bb) = match (self.cfg.block_of(a), self.cfg.block_of(b)) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        if ba == bb {
            let stmts = &self.cfg.block(ba).stmts;
            let ia = stmts.iter().position(|&s| s == a);
            let ib = stmts.iter().position(|&s| s == b);
            return ia <= ib;
        }
        self.dom.dominates(ba, bb)
    }

    /// Build the DAG of the block containing `s` (the low-level view the
    /// ADAG annotations attach to).
    pub fn block_dag_of(&self, prog: &Program, s: StmtId) -> Option<BlockDag> {
        let b = self.cfg.block_of(s)?;
        Some(dag::build(prog, &self.cfg.block(b).stmts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    #[test]
    fn builds_all_layers() {
        let p = parse(
            "D = E + F\nC = 1\ndo i = 1, 100\n  do j = 1, 50\n    A(j) = B(j) + C\n    R(i, j) = E + F\n  enddo\nenddo\n",
        )
        .unwrap();
        let rep = Rep::build(&p);
        assert!(rep.cfg.len() >= 5);
        assert_eq!(rep.pdg(&p).len(), 3);
        assert_eq!(rep.builds, 1);
        assert_eq!(rep.pos.len(), p.attached_len());
    }

    #[test]
    fn refresh_counts_builds() {
        let p = parse("a = 1\n").unwrap();
        let mut rep = Rep::build(&p);
        rep.refresh(&p);
        rep.refresh(&p);
        assert_eq!(rep.builds, 3);
        rep.try_refresh(&p).unwrap();
        assert_eq!(rep.builds, 4);
    }

    #[test]
    fn before_and_dominates() {
        let p = parse("a = 1\nread c\nif (c > 0) then\n  b = 2\nendif\nd = 3\n").unwrap();
        let rep = Rep::build(&p);
        let ss = p.attached_stmts();
        assert!(rep.before(ss[0], ss[1]));
        assert!(!rep.before(ss[1], ss[0]));
        // a dominates everything below it.
        assert!(rep.stmt_dominates(ss[0], ss[3]));
        assert!(rep.stmt_dominates(ss[0], ss[4]));
        // The then-branch statement does not dominate the following one.
        assert!(!rep.stmt_dominates(ss[3], ss[4]));
        // Same-block ordering.
        assert!(rep.stmt_dominates(ss[0], ss[1]));
        assert!(!rep.stmt_dominates(ss[1], ss[0]));
        // Reflexive.
        assert!(rep.stmt_dominates(ss[0], ss[0]));
    }

    /// A pooled build must produce the same representation as the
    /// sequential one on a program large enough to shard.
    #[test]
    fn parallel_build_matches_sequential() {
        let mut src = String::from("read c\ns = 0\n");
        for i in 0..24 {
            src.push_str(&format!(
                "if (c > {i}) then\n  s = s + c\nelse\n  c = c + 1\nendif\ndo i = 1, 3\n  s = s + i\nenddo\n"
            ));
        }
        src.push_str("write s\n");
        let p = parse(&src).unwrap();
        let seq = Rep::build(&p);
        for threads in [2, 4, 8] {
            let par = Rep::build_with(&p, &pivot_par::Pool::new(threads));
            assert_eq!(seq.reach.sol.ins, par.reach.sol.ins, "{threads}t reach");
            assert_eq!(seq.reach.sol.outs, par.reach.sol.outs, "{threads}t reach");
            assert_eq!(seq.live.sol.ins, par.live.sol.ins, "{threads}t live");
            assert_eq!(seq.live.sol.outs, par.live.sol.outs, "{threads}t live");
            assert_eq!(seq.chains.ud, par.chains.ud, "{threads}t ud");
            assert_eq!(seq.chains.du, par.chains.du, "{threads}t du");
            assert_eq!(seq.pos, par.pos, "{threads}t pos");
            for b in seq.cfg.ids() {
                assert_eq!(
                    seq.dom.parent(b),
                    par.dom.parent(b),
                    "{threads}t dom at {b}"
                );
                assert_eq!(
                    seq.pdom.parent(b),
                    par.pdom.parent(b),
                    "{threads}t pdom at {b}"
                );
            }
        }
    }

    /// `refresh_with` keeps the build/incremental counters exactly like
    /// the sequential refresh.
    #[test]
    fn refresh_with_counts_builds() {
        let p = parse("a = 1\n").unwrap();
        let mut rep = Rep::build(&p);
        rep.refresh_with(&p, &pivot_par::Pool::new(4));
        assert_eq!(rep.builds, 2);
        rep.try_refresh_with(&p, &pivot_par::Pool::new(4)).unwrap();
        assert_eq!(rep.builds, 3);
        assert_eq!(rep.incr_updates, 0);
    }

    #[test]
    fn block_dag_shares() {
        let p = parse("d = e + f\nr = e + f\n").unwrap();
        let rep = Rep::build(&p);
        let ss = p.attached_stmts();
        let dag = rep.block_dag_of(&p, ss[0]).unwrap();
        assert_eq!(dag.shared_ops().len(), 1);
    }
}

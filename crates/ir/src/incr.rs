//! Incremental update of the two-level representation.
//!
//! The paper assumes "incremental data flow analysis using the CFG" after
//! every transformation and undo; this module supplies it. Instead of
//! rebuilding every analysis from the program text ([`Rep::build`]), the
//! engine summarizes each structural change as an [`EditDelta`] and calls
//! [`Rep::try_refresh_delta`], which:
//!
//! 1. rebuilds the CFG (linear, deterministic) and checks **shape
//!    compatibility** with the previous one — same block count, kinds and
//!    edges. The builder is deterministic, so an unchanged control
//!    structure reproduces identical block ids; if the shape changed
//!    (a loop or branch appeared/disappeared), the update falls back to a
//!    batch rebuild (counted in `rep.incr.fallback`);
//! 2. seeds a **dirty-block set** from the delta and from per-block
//!    statement-list differences, remaps the reaching-definition fact
//!    numbering old→new, and restarts the bitset dataflow solvers from the
//!    dirty frontier ([`crate::dataflow::resolve_dirty`]) rather than from
//!    scratch;
//! 3. recomputes def-use/use-def chains only for blocks whose statements or
//!    reaching-in sets changed ([`crate::chains::patch`]);
//! 4. reuses the dominator and postdominator trees verbatim (shape
//!    compatibility means the edge sets are identical) and drops the lazy
//!    layers (available expressions, DDG/PDG) to be rebuilt on demand.
//!
//! Deltas consisting solely of in-place expression rewrites (`touched`
//! statements — single RHS edits, the modify actions of rewriting
//! transformations) take a fast path: the statement tree is unchanged, so
//! the CFG, dominators, positions and the entire reaching-definitions
//! layer are reused verbatim; only liveness and the touched blocks'
//! chains are recomputed.
//!
//! [`RepMode::Checked`] is the conformance oracle: it performs the
//! incremental update, then builds a from-scratch representation and panics
//! on any structural divergence ([`check_against_batch`]). The differential
//! test harness (`tests/incr_differential.rs`) and the CI soak matrix drive
//! sessions in this mode.

use crate::bitset::BitSet;
use crate::cfg::{self, BlockId, Cfg};
use crate::chains;
use crate::dataflow::{self, Direction, Meet, Problem, Solution};
use crate::reaching::{self, ReachingDefs};
use crate::twolevel::Rep;
use pivot_lang::{Program, StmtId, Sym};
use std::collections::{HashMap, HashSet};

/// How the engine refreshes the representation after a structural change.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RepMode {
    /// Rebuild every analysis from scratch (the pre-incremental behavior).
    #[default]
    Batch,
    /// Apply [`EditDelta`]-driven incremental updates, falling back to a
    /// batch rebuild when the CFG shape changed.
    Incremental,
    /// Incremental, plus a from-scratch rebuild after every update with a
    /// panic on divergence — the differential-testing oracle.
    Checked,
}

impl RepMode {
    /// Stable snake_case name (metric labels, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            RepMode::Batch => "batch",
            RepMode::Incremental => "incremental",
            RepMode::Checked => "checked",
        }
    }
}

/// Summary of one structural change to the program, in terms the analyses
/// understand. Produced by the engine from the primitive actions of an
/// apply/undo (or from a user edit) and consumed by
/// [`Rep::try_refresh_delta`].
#[derive(Clone, Debug, Default)]
pub struct EditDelta {
    /// Statements newly attached (inverse-of-delete, add, copy targets).
    pub inserted: Vec<StmtId>,
    /// Statements detached (delete, inverse-of-add/copy), with their
    /// subtrees.
    pub removed: Vec<StmtId>,
    /// Statements relocated (move, inverse-of-move).
    pub moved: Vec<StmtId>,
    /// Statements whose expressions were rewritten in place (modify-expr
    /// owners, modify-header targets, RHS edits).
    pub touched: Vec<StmtId>,
}

impl EditDelta {
    /// No recorded changes.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.removed.is_empty()
            && self.moved.is_empty()
            && self.touched.is_empty()
    }
}

/// Why an incremental update bailed to a batch rebuild.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallbackReason {
    /// The CFG shape changed (block count, kinds, or edges differ), so
    /// block ids cannot be carried over.
    CfgShapeChanged,
}

impl FallbackReason {
    /// Stable snake_case name (trace events, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::CfgShapeChanged => "cfg_shape_changed",
        }
    }
}

/// Statistics from one successful incremental update.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrStats {
    /// Blocks seeded dirty (statement lists or transfer functions changed).
    pub dirty_blocks: usize,
    /// Blocks re-solved across both dataflow restarts (cone of influence).
    pub cone_blocks: usize,
    /// Total blocks in the CFG (for dirty-ratio reporting).
    pub total_blocks: usize,
    /// Block transfer evaluations across both dataflow restarts.
    pub worklist_iters: u64,
}

/// Outcome of a delta-driven refresh: either the update was applied
/// incrementally, or it fell back to a batch rebuild for `reason`.
#[derive(Clone, Copy, Debug)]
pub enum RefreshOutcome {
    /// The incremental path ran to completion.
    Incremental(IncrStats),
    /// The update bailed and a batch rebuild was performed instead.
    Fallback(FallbackReason),
}

/// Same block count, kinds, and edge lists: the deterministic builder
/// guarantees identical block ids for identical control structure, so
/// everything keyed by [`BlockId`] can be carried over.
fn shape_compatible(old: &Cfg, new: &Cfg) -> bool {
    if old.len() != new.len() || old.entry != new.entry || old.exit != new.exit {
        return false;
    }
    for b in new.ids() {
        let (o, n) = (old.block(b), new.block(b));
        if o.kind != n.kind || o.succs != n.succs || o.preds != n.preds {
            return false;
        }
    }
    true
}

/// Map a bitset through an old→new fact renumbering.
fn remap_bits(old: &BitSet, map: &[Option<usize>], new_universe: usize) -> BitSet {
    let mut out = BitSet::new(new_universe);
    for i in old.iter() {
        if let Some(j) = map[i] {
            out.insert(j);
        }
    }
    out
}

/// Blocks reachable from `seed` along the propagation direction (including
/// the seed itself), in ascending id order.
fn cone_of(cfg: &Cfg, seed: &[BlockId], direction: Direction) -> Vec<BlockId> {
    let mut seen = vec![false; cfg.len()];
    let mut stack: Vec<BlockId> = Vec::new();
    for &b in seed {
        if !seen[b.index()] {
            seen[b.index()] = true;
            stack.push(b);
        }
    }
    while let Some(b) = stack.pop() {
        let nexts: &[BlockId] = match direction {
            Direction::Forward => &cfg.block(b).succs,
            Direction::Backward => &cfg.block(b).preds,
        };
        for &q in nexts {
            if !seen[q.index()] {
                seen[q.index()] = true;
                stack.push(q);
            }
        }
    }
    cfg.ids().filter(|b| seen[b.index()]).collect()
}

/// Apply a delta-driven incremental update to `rep` in place. On
/// `Err(reason)` nothing has been modified and the caller performs a batch
/// rebuild instead.
pub(crate) fn update(
    rep: &mut Rep,
    prog: &Program,
    delta: &EditDelta,
) -> Result<IncrStats, FallbackReason> {
    // Fast path: a delta of pure in-place expression rewrites (`touched`
    // only) leaves the statement tree untouched — and with it the CFG,
    // the dominator trees, the pre-order positions, and every reaching-
    // definition transfer function (def sites are (stmt, sym) pairs; an
    // expression rewrite can change neither). Only liveness use sets and
    // the touched blocks' chains can differ, so skip the CFG rebuild, the
    // shape check, the fact renumbering and the forward solve entirely.
    if delta.inserted.is_empty() && delta.removed.is_empty() && delta.moved.is_empty() {
        if let Some(stats) = try_update_exprs_only(rep, prog, delta) {
            return Ok(stats);
        }
    }
    let new_cfg = cfg::build(prog);
    if !shape_compatible(&rep.cfg, &new_cfg) {
        return Err(FallbackReason::CfgShapeChanged);
    }
    // From here on the update always succeeds; `rep` may be mutated freely.

    // ---- reaching definitions: fact renumbering ------------------------
    // Both paths enumerate def sites with `reaching::def_sites`, so the
    // incremental numbering is bit-for-bit the batch numbering.
    let sites = reaching::def_sites(prog);
    let universe = sites.len();
    let mut site_index: HashMap<(StmtId, Sym), usize> = HashMap::with_capacity(universe);
    let mut by_sym: HashMap<Sym, Vec<usize>> = HashMap::new();
    for (i, d) in sites.iter().enumerate() {
        site_index.insert((d.stmt, d.sym), i);
        by_sym.entry(d.sym).or_default().push(i);
    }
    let fact_map: Vec<Option<usize>> = rep
        .reach
        .sites
        .iter()
        .map(|d| {
            site_index
                .get(&(d.stmt, d.sym))
                .copied()
                .filter(|&j| sites[j].is_array == d.is_array)
        })
        .collect();
    // Symbols whose def-site set changed. A scalar def kills *every other
    // def site of its symbol*, program-wide — so when a symbol gains or
    // loses a site, every block defining that symbol has a changed kill set
    // and must be re-seeded dirty, not just the block that changed. A
    // symbol's set changed exactly when one of its old sites vanished (no
    // image under `fact_map`) or a new site has no preimage; reordering
    // surviving sites renumbers facts but cannot change any kill *set*.
    let mut changed_syms: HashSet<Sym> = HashSet::new();
    let mut vanished: Vec<(StmtId, Sym)> = Vec::new();
    let mut covered = vec![false; universe];
    for (i, d) in rep.reach.sites.iter().enumerate() {
        match fact_map[i] {
            Some(j) => covered[j] = true,
            None => {
                changed_syms.insert(d.sym);
                vanished.push((d.stmt, d.sym));
            }
        }
    }
    let mut has_new_site = false;
    for (j, d) in sites.iter().enumerate() {
        if !covered[j] {
            changed_syms.insert(d.sym);
            has_new_site = true;
        }
    }

    // ---- dirty-block seed ---------------------------------------------
    let mut dirty: HashSet<BlockId> = HashSet::new();
    for b in new_cfg.ids() {
        if new_cfg.block(b).stmts != rep.cfg.block(b).stmts {
            dirty.insert(b);
        }
    }
    for &s in delta
        .touched
        .iter()
        .chain(&delta.inserted)
        .chain(&delta.moved)
    {
        if let Some(b) = new_cfg.block_of(s) {
            dirty.insert(b);
        }
    }
    for sym in &changed_syms {
        if let Some(facts) = by_sym.get(sym) {
            for &f in facts {
                if let Some(b) = new_cfg.block_of(sites[f].stmt) {
                    dirty.insert(b);
                }
            }
        }
    }
    let mut dirty: Vec<BlockId> = dirty.into_iter().collect();
    dirty.sort();

    let mut stats = IncrStats {
        dirty_blocks: dirty.len(),
        total_blocks: new_cfg.len(),
        ..IncrStats::default()
    };

    // ---- reaching: remap clean transfers, recompute dirty, re-solve ----
    let n = new_cfg.len();
    let remap_all = |v: &[BitSet]| -> Vec<BitSet> {
        v.iter()
            .map(|s| remap_bits(s, &fact_map, universe))
            .collect()
    };
    // Remapping *drops* facts of vanished def sites silently: a clean
    // block whose IN contained such a fact shows no change across the
    // re-solve, yet its use-def entries may still name the vanished def.
    // Record those blocks so the chains patch re-walks them.
    let mut lost_fact: Vec<BlockId> = Vec::new();
    let ins: Vec<BitSet> = rep
        .reach
        .sol
        .ins
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut out = BitSet::new(universe);
            let mut lost = false;
            for f in s.iter() {
                match fact_map[f] {
                    Some(j) => {
                        out.insert(j);
                    }
                    None => lost = true,
                }
            }
            if lost {
                lost_fact.push(BlockId(i as u32));
            }
            out
        })
        .collect();
    let gen = remap_all(&rep.reach.gen);
    let kill = remap_all(&rep.reach.kill);
    // The old solution satisfies `out = gen ∪ (in − kill)` per block, and
    // remapping is a per-bit injection, so the remapped outs can be
    // *recomputed* from the remapped ins and transfers with word-level
    // operations instead of a fourth dense per-bit pass. Dirty blocks get
    // fresh transfers below and are re-solved either way.
    let outs: Vec<BitSet> = ins
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut o = s.clone();
            o.subtract(&kill[i]);
            o.union_with(&gen[i]);
            o
        })
        .collect();
    let mut reach = ReachingDefs {
        gen,
        kill,
        sol: Solution { ins, outs },
        sites,
        site_index,
        by_sym,
    };
    for &b in &dirty {
        reach.recompute_block(prog, &new_cfg, b);
    }
    // A delta that only *removes* statements can only grow the remaining
    // reaching facts (a removed definition un-kills other sites and exposes
    // earlier ones), so the remapped solution is a pre-fixpoint and a warm
    // worklist restart converges to the exact new fixpoint without any cone
    // reset. Any new def site (insert, move, or a header rewrite swapping
    // induction variables) can grow a kill set and needs the reset path.
    let growth_only = delta.inserted.is_empty() && delta.moved.is_empty() && !has_new_site;
    // For the reset path: blocks whose reaching-in sets may change = the
    // forward cone; snapshot their remapped values so the chains patch can
    // re-walk only the blocks where they actually did. The warm path
    // reports changed blocks directly.
    let (fwd_cone, ins_before) = if growth_only {
        (Vec::new(), Vec::new())
    } else {
        let cone = cone_of(&new_cfg, &dirty, Direction::Forward);
        let before: Vec<BitSet> = cone
            .iter()
            .map(|b| reach.sol.ins[b.index()].clone())
            .collect();
        (cone, before)
    };
    let prob = Problem {
        direction: Direction::Forward,
        meet: Meet::Union,
        universe,
        gen: std::mem::take(&mut reach.gen),
        kill: std::mem::take(&mut reach.kill),
        boundary: BitSet::new(universe),
    };
    let (rstats, ins_grew) = if growth_only {
        let (st, changed) = dataflow::resolve_warm(&new_cfg, &prob, &mut reach.sol, &dirty);
        (st, Some(changed))
    } else {
        (
            dataflow::resolve_dirty(&new_cfg, &prob, &mut reach.sol, &dirty),
            None,
        )
    };
    reach.gen = prob.gen;
    reach.kill = prob.kill;
    stats.cone_blocks += rstats.cone_blocks;
    stats.worklist_iters += rstats.worklist_iters;

    // ---- liveness: grow the symbol universe, re-solve backward ---------
    rep.live.grow_and_redo(prog, &new_cfg, &dirty);
    let live_universe = rep.live.universe();
    let prob = Problem {
        direction: Direction::Backward,
        meet: Meet::Union,
        universe: live_universe,
        gen: std::mem::take(&mut rep.live.gen),
        kill: std::mem::take(&mut rep.live.kill),
        boundary: BitSet::new(live_universe),
    };
    let lstats = dataflow::resolve_dirty(&new_cfg, &prob, &mut rep.live.sol, &dirty);
    rep.live.gen = prob.gen;
    rep.live.kill = prob.kill;
    stats.cone_blocks += lstats.cone_blocks;
    stats.worklist_iters += lstats.worklist_iters;
    debug_assert_eq!(n, rep.live.sol.ins.len());

    // ---- chains: re-walk dirty blocks plus blocks whose IN changed ------
    let mut rewalk: Vec<BlockId> = dirty.clone();
    if let Some(grew) = ins_grew {
        // Warm path: links to vanished defs are purged surgically through
        // the chain maps, so blocks that merely *contained* a vanished fact
        // need no re-walk — only the dirty blocks and those whose reaching
        // IN actually grew.
        for b in grew {
            if !rewalk.contains(&b) {
                rewalk.push(b);
            }
        }
        rewalk.sort();
        chains::patch_removal(
            &mut rep.chains,
            prog,
            &new_cfg,
            &reach,
            &rewalk,
            &delta.removed,
            &vanished,
        );
    } else {
        // Reset path: also re-walk blocks that lost a fact in the
        // renumbering (their use-def entries may still name the vanished
        // def) and cone blocks whose IN moved across the re-solve.
        for &b in &lost_fact {
            if !rewalk.contains(&b) {
                rewalk.push(b);
            }
        }
        for (i, &b) in fwd_cone.iter().enumerate() {
            if reach.sol.ins[b.index()] != ins_before[i] && !rewalk.contains(&b) {
                rewalk.push(b);
            }
        }
        rewalk.sort();
        chains::patch(
            &mut rep.chains,
            prog,
            &new_cfg,
            &reach,
            &rewalk,
            &delta.removed,
        );
    }
    // ---- commit ---------------------------------------------------------
    // Dominators and postdominators depend only on the edge sets, which
    // shape compatibility proved unchanged — reuse them verbatim. The lazy
    // layers (available expressions, DDG/PDG) are dropped and rebuilt on
    // first demand.
    rep.reach = reach;
    rep.cfg = new_cfg;
    rep.pos = prog
        .attached_stmts()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    rep.invalidate_lazy();
    Ok(stats)
}

/// The expression-rewrite fast path of [`update`]: recompute the liveness
/// transfers of the touched blocks and restart the backward solve from
/// them, re-walk their chains against the (unchanged) reaching facts, and
/// drop the lazy layers. Everything else is reused verbatim.
///
/// Returns `None` — leaving `rep` untouched — when a touched statement no
/// longer defines exactly what it did: a header rewrite may swap which
/// induction variable a statement defines (loop interchange), which
/// renumbers the reaching facts and needs the general path.
fn try_update_exprs_only(rep: &mut Rep, prog: &Program, delta: &EditDelta) -> Option<IncrStats> {
    let touched: HashSet<StmtId> = delta.touched.iter().copied().collect();
    let mut old_defs: HashMap<StmtId, Vec<(Sym, bool)>> = HashMap::new();
    for d in &rep.reach.sites {
        if touched.contains(&d.stmt) {
            old_defs
                .entry(d.stmt)
                .or_default()
                .push((d.sym, d.is_array));
        }
    }
    for &s in &touched {
        let du = crate::access::stmt_def_use(prog, s);
        let new_defs: Vec<(Sym, bool)> = du
            .def_scalars
            .iter()
            .map(|&y| (y, false))
            .chain(du.def_arrays.iter().map(|&y| (y, true)))
            .collect();
        if !old_defs
            .get(&s)
            .map_or(new_defs.is_empty(), |v| *v == new_defs)
        {
            return None;
        }
    }

    let mut dirty: Vec<BlockId> = delta
        .touched
        .iter()
        .filter_map(|&s| rep.cfg.block_of(s))
        .collect();
    dirty.sort();
    dirty.dedup();
    let mut stats = IncrStats {
        dirty_blocks: dirty.len(),
        total_blocks: rep.cfg.len(),
        ..IncrStats::default()
    };

    rep.live.grow_and_redo(prog, &rep.cfg, &dirty);
    let live_universe = rep.live.universe();
    let prob = Problem {
        direction: Direction::Backward,
        meet: Meet::Union,
        universe: live_universe,
        gen: std::mem::take(&mut rep.live.gen),
        kill: std::mem::take(&mut rep.live.kill),
        boundary: BitSet::new(live_universe),
    };
    let lstats = dataflow::resolve_dirty(&rep.cfg, &prob, &mut rep.live.sol, &dirty);
    rep.live.gen = prob.gen;
    rep.live.kill = prob.kill;
    stats.cone_blocks += lstats.cone_blocks;
    stats.worklist_iters += lstats.worklist_iters;

    chains::patch_local(&mut rep.chains, prog, &rep.cfg, &rep.reach, &dirty);
    rep.invalidate_lazy();
    Some(stats)
}

/// First structural difference between two representations, or `None` when
/// every eagerly-built layer agrees. The comparison is exact: block lists,
/// dominator trees, fact numberings, bitset solutions, transfer sets,
/// chains, and pre-order positions.
pub fn divergence(batch: &Rep, other: &Rep) -> Option<String> {
    if batch.cfg.len() != other.cfg.len() {
        return Some(format!(
            "cfg block count {} != {}",
            batch.cfg.len(),
            other.cfg.len()
        ));
    }
    for b in batch.cfg.ids() {
        let (x, y) = (batch.cfg.block(b), other.cfg.block(b));
        if x.kind != y.kind {
            return Some(format!("cfg {b} kind {:?} != {:?}", x.kind, y.kind));
        }
        if x.stmts != y.stmts {
            return Some(format!("cfg {b} stmts {:?} != {:?}", x.stmts, y.stmts));
        }
        if x.succs != y.succs || x.preds != y.preds {
            return Some(format!("cfg {b} edges differ"));
        }
    }
    if batch.cfg.stmt_block != other.cfg.stmt_block {
        return Some("stmt→block map differs".into());
    }
    if batch.dom.idom != other.dom.idom || batch.dom.root != other.dom.root {
        return Some("dominator tree differs".into());
    }
    if batch.pdom.idom != other.pdom.idom || batch.pdom.root != other.pdom.root {
        return Some("postdominator tree differs".into());
    }
    if batch.reach.sites != other.reach.sites {
        return Some("reaching def-site numbering differs".into());
    }
    if batch.reach.gen != other.reach.gen || batch.reach.kill != other.reach.kill {
        return Some("reaching gen/kill sets differ".into());
    }
    if batch.reach.sol.ins != other.reach.sol.ins || batch.reach.sol.outs != other.reach.sol.outs {
        return Some("reaching solution differs".into());
    }
    if batch.live.universe() != other.live.universe() {
        return Some(format!(
            "liveness universe {} != {}",
            batch.live.universe(),
            other.live.universe()
        ));
    }
    if batch.live.gen != other.live.gen || batch.live.kill != other.live.kill {
        return Some("liveness gen/kill sets differ".into());
    }
    if batch.live.sol.ins != other.live.sol.ins || batch.live.sol.outs != other.live.sol.outs {
        return Some("liveness solution differs".into());
    }
    if batch.chains.ud != other.chains.ud {
        return Some("use-def chains differ".into());
    }
    if batch.chains.du != other.chains.du {
        return Some("def-use chains differ".into());
    }
    if batch.pos != other.pos {
        return Some("pre-order positions differ".into());
    }
    None
}

/// The [`RepMode::Checked`] oracle: rebuild from scratch and panic on any
/// divergence from the incrementally-maintained representation.
///
/// # Panics
///
/// Panics when `rep` structurally diverges from a batch rebuild — that is
/// the point: the differential harness and the CI soak matrix surface
/// incremental-update bugs as test failures.
pub fn check_against_batch(rep: &Rep, prog: &Program) {
    let batch = Rep::build(prog);
    if let Some(d) = divergence(&batch, rep) {
        panic!("RepMode::Checked: incremental representation diverged from batch rebuild: {d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    #[test]
    fn empty_delta_update_is_identity() {
        let p = parse("x = 1\ndo i = 1, 3\n  y = x + i\nenddo\nwrite y\n").unwrap();
        let mut rep = Rep::build(&p);
        let stats = update(&mut rep, &p, &EditDelta::default()).unwrap();
        assert_eq!(stats.dirty_blocks, 0);
        assert_eq!(stats.worklist_iters, 0);
        check_against_batch(&rep, &p);
    }

    #[test]
    fn rhs_rewrite_updates_incrementally() {
        let mut p = parse("c = 1\nx = c + 2\ndo i = 1, 3\n  y = x + i\nenddo\nwrite y\n").unwrap();
        let mut rep = Rep::build(&p);
        // Rewrite `x = c + 2` to `x = 5` in place (a CTP-style modify).
        let x_stmt = p.body[1];
        let value = match &p.stmt(x_stmt).kind {
            pivot_lang::StmtKind::Assign { value, .. } => *value,
            _ => unreachable!(),
        };
        p.replace_expr_kind(value, pivot_lang::ExprKind::Const(5));
        let delta = EditDelta {
            touched: vec![x_stmt],
            ..EditDelta::default()
        };
        let stats = update(&mut rep, &p, &delta).unwrap();
        assert!(stats.dirty_blocks >= 1);
        assert!(stats.dirty_blocks < rep.cfg.len());
        check_against_batch(&rep, &p);
        // The use of c is gone from the chains.
        let c = p.symbols.get("c").unwrap();
        assert!(!rep.chains.ud.contains_key(&(x_stmt, c)));
    }

    #[test]
    fn structural_change_falls_back() {
        let p = parse("x = 1\nwrite x\n").unwrap();
        let mut rep = Rep::build(&p);
        let p2 = parse("x = 1\nif (x > 0) then\n  write x\nendif\n").unwrap();
        let delta = EditDelta {
            inserted: vec![p2.body[1]],
            ..EditDelta::default()
        };
        let err = update(&mut rep, &p2, &delta).unwrap_err();
        assert_eq!(err, FallbackReason::CfgShapeChanged);
        assert_eq!(err.name(), "cfg_shape_changed");
    }

    #[test]
    fn detach_updates_def_sites_and_chains() {
        let mut p = parse("x = 1\nx = 2\nwrite x\n").unwrap();
        let mut rep = Rep::build(&p);
        // Detach the killing second definition: the first def now reaches
        // the write — kill sets of every x-defining block change.
        let second = p.body[1];
        p.detach(second).unwrap();
        let delta = EditDelta {
            removed: vec![second],
            ..EditDelta::default()
        };
        update(&mut rep, &p, &delta).unwrap();
        check_against_batch(&rep, &p);
        let x = p.symbols.get("x").unwrap();
        let w = p.body[1]; // the write shifted up
        assert_eq!(rep.chains.sole_def(w, x), Some(p.body[0]));
    }

    #[test]
    fn divergence_reports_chain_mismatch() {
        let p = parse("x = 1\nwrite x\n").unwrap();
        let a = Rep::build(&p);
        let mut b = Rep::build(&p);
        let x = p.symbols.get("x").unwrap();
        b.chains.ud.insert((p.body[0], x), vec![p.body[1]]);
        assert!(divergence(&a, &b).unwrap().contains("use-def"));
        assert!(divergence(&a, &a).is_none());
    }
}

//! Per-basic-block DAG with value numbering — the paper's low-level
//! representation (the "ADAG" once history annotations are attached).
//!
//! A dag for an expression represents the data dependences in the
//! expression; statements of a block are folded into one DAG showing how the
//! value computed at one statement is used by subsequent statements
//! (Section 3 of the paper). Value numbering shares structurally identical
//! computations, so locally common subexpressions appear as node reuse.

use pivot_lang::{BinOp, ExprId, ExprKind, Program, StmtId, StmtKind, Sym, UnOp};
use std::collections::HashMap;
use std::fmt::Write as _;

/// DAG node identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DagId(pub u32);

impl DagId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// DAG node payload.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DagNode {
    /// Constant leaf.
    Const(i64),
    /// Initial (block-entry) value of a scalar.
    Initial(Sym),
    /// Initial value of an array element; the version number distinguishes
    /// reads separated by stores to the array.
    ArrayRead(Sym, Vec<DagId>, u32),
    /// Unary operation.
    Unary(UnOp, DagId),
    /// Binary operation (commutative operands normalized).
    Binary(BinOp, DagId, DagId),
}

/// A value-numbered DAG for one basic block.
#[derive(Clone, Debug, Default)]
pub struct BlockDag {
    /// Nodes in creation order.
    pub nodes: Vec<DagNode>,
    /// Value-number table.
    table: HashMap<DagNode, DagId>,
    /// Current binding of each scalar.
    bindings: HashMap<Sym, DagId>,
    /// Current version of each array (bumped by stores).
    array_version: HashMap<Sym, u32>,
    /// Node computed by each assignment statement.
    pub stmt_value: HashMap<StmtId, DagId>,
    /// How many times each node was *requested* (shared nodes ⇒ local CSE).
    pub hits: Vec<u32>,
}

impl BlockDag {
    fn intern(&mut self, node: DagNode) -> DagId {
        if let Some(&id) = self.table.get(&node) {
            self.hits[id.index()] += 1;
            return id;
        }
        let id = DagId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.hits.push(1);
        self.table.insert(node, id);
        id
    }

    fn eval(&mut self, prog: &Program, e: ExprId) -> DagId {
        match prog.expr(e).kind.clone() {
            ExprKind::Const(c) => self.intern(DagNode::Const(c)),
            ExprKind::Var(v) => match self.bindings.get(&v) {
                Some(&id) => {
                    self.hits[id.index()] += 1;
                    id
                }
                None => self.intern(DagNode::Initial(v)),
            },
            ExprKind::Index(a, subs) => {
                let subs: Vec<DagId> = subs.iter().map(|&s| self.eval(prog, s)).collect();
                let ver = *self.array_version.get(&a).unwrap_or(&0);
                self.intern(DagNode::ArrayRead(a, subs, ver))
            }
            ExprKind::Unary(op, a) => {
                let a = self.eval(prog, a);
                self.intern(DagNode::Unary(op, a))
            }
            ExprKind::Binary(op, a, b) => {
                let mut a = self.eval(prog, a);
                let mut b = self.eval(prog, b);
                if op.is_commutative() && b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                self.intern(DagNode::Binary(op, a, b))
            }
        }
    }

    /// Nodes whose value was requested more than once — locally common
    /// subexpressions (excluding trivial leaves).
    pub fn shared_ops(&self) -> Vec<DagId> {
        (0..self.nodes.len() as u32)
            .map(DagId)
            .filter(|&id| {
                self.hits[id.index()] > 1
                    && matches!(
                        self.nodes[id.index()],
                        DagNode::Binary(..) | DagNode::Unary(..)
                    )
            })
            .collect()
    }

    /// Render for debugging/examples.
    pub fn dump(&self, prog: &Program) -> String {
        let mut s = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(s, "n{i}: ");
            match n {
                DagNode::Const(c) => {
                    let _ = write!(s, "const {c}");
                }
                DagNode::Initial(v) => {
                    let _ = write!(s, "init {}", prog.symbols.name(*v));
                }
                DagNode::ArrayRead(a, subs, ver) => {
                    let subs: Vec<String> = subs.iter().map(|d| format!("n{}", d.0)).collect();
                    let _ = write!(s, "{}[{}]@v{}", prog.symbols.name(*a), subs.join(","), ver);
                }
                DagNode::Unary(op, a) => {
                    let _ = write!(s, "{} n{}", op.symbol(), a.0);
                }
                DagNode::Binary(op, a, b) => {
                    let _ = write!(s, "n{} {} n{}", a.0, op.symbol(), b.0);
                }
            }
            if self.hits[i] > 1 {
                let _ = write!(s, "  (x{})", self.hits[i]);
            }
            s.push('\n');
        }
        s
    }
}

/// Build the DAG of a statement sequence (normally one basic block's simple
/// statements). `read`/`write` participate as uses/defs of their operands.
pub fn build(prog: &Program, stmts: &[StmtId]) -> BlockDag {
    let mut dag = BlockDag::default();
    for &s in stmts {
        match &prog.stmt(s).kind {
            StmtKind::Assign { target, value } => {
                let v = dag.eval(prog, *value);
                dag.stmt_value.insert(s, v);
                if target.is_scalar() {
                    dag.bindings.insert(target.var, v);
                } else {
                    for &sub in &target.subs {
                        dag.eval(prog, sub);
                    }
                    *dag.array_version.entry(target.var).or_insert(0) += 1;
                }
            }
            StmtKind::Read { target } => {
                // A read produces an unknown value: model as a fresh initial
                // leaf distinguished by the statement.
                let fresh = DagId(dag.nodes.len() as u32);
                dag.nodes.push(DagNode::Initial(target.var));
                dag.hits.push(1);
                dag.stmt_value.insert(s, fresh);
                if target.is_scalar() {
                    dag.bindings.insert(target.var, fresh);
                } else {
                    *dag.array_version.entry(target.var).or_insert(0) += 1;
                }
            }
            StmtKind::Write { value } => {
                let v = dag.eval(prog, *value);
                dag.stmt_value.insert(s, v);
            }
            // Compound statements do not appear inside a basic block.
            StmtKind::DoLoop { .. } | StmtKind::If { .. } => {}
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    fn stmts(p: &Program) -> Vec<StmtId> {
        p.attached_stmts()
    }

    #[test]
    fn shares_common_subexpression() {
        let p = parse("d = e + f\nr = e + f\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        assert_eq!(dag.stmt_value[&ss[0]], dag.stmt_value[&ss[1]]);
        assert_eq!(dag.shared_ops().len(), 1);
    }

    #[test]
    fn commutative_sharing() {
        let p = parse("d = e + f\nr = f + e\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        assert_eq!(dag.stmt_value[&ss[0]], dag.stmt_value[&ss[1]]);
    }

    #[test]
    fn redefinition_breaks_sharing() {
        let p = parse("d = e + f\ne = 1\nr = e + f\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        assert_ne!(dag.stmt_value[&ss[0]], dag.stmt_value[&ss[2]]);
    }

    #[test]
    fn copy_tracks_binding() {
        let p = parse("x = e\ny = x + 1\nz = e + 1\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        // x is bound to init(e), so x+1 and e+1 share a node.
        assert_eq!(dag.stmt_value[&ss[1]], dag.stmt_value[&ss[2]]);
    }

    #[test]
    fn array_store_invalidates_reads() {
        let p = parse("x = A(i)\nA(j) = 0\ny = A(i)\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        assert_ne!(dag.stmt_value[&ss[0]], dag.stmt_value[&ss[2]]);
    }

    #[test]
    fn array_reads_share_when_no_store() {
        let p = parse("x = A(i)\ny = A(i)\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        assert_eq!(dag.stmt_value[&ss[0]], dag.stmt_value[&ss[1]]);
    }

    #[test]
    fn read_produces_unknown() {
        let p = parse("read x\ny = x\nread x\nz = x\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        assert_ne!(dag.stmt_value[&ss[1]], dag.stmt_value[&ss[3]]);
    }

    #[test]
    fn dump_mentions_sharing() {
        let p = parse("d = e + f\nr = e + f\n").unwrap();
        let ss = stmts(&p);
        let dag = build(&p, &ss);
        let d = dag.dump(&p);
        assert!(d.contains("(x"), "expected share marker in:\n{d}");
    }
}

//! Reaching definitions.
//!
//! Def sites are `(statement, symbol)` pairs. Scalar definitions are
//! definite (they kill all other defs of the symbol); array-element
//! definitions are *may*-defs (they kill nothing, and any array def site
//! reaches any later use of the array unless a definite kill intervenes —
//! there are none for arrays in this language).

use crate::access::stmt_def_use;
use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dataflow::{solve_with, Direction, Meet, Problem, Solution, PAR_MIN_BLOCKS};
use pivot_lang::{Program, StmtId, Sym};
use std::collections::HashMap;

/// A single definition site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DefSite {
    /// Defining statement.
    pub stmt: StmtId,
    /// Defined symbol.
    pub sym: Sym,
    /// True if this is an array-element (may) definition.
    pub is_array: bool,
}

/// Reaching-definitions analysis result.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// All definition sites, indexed by fact number.
    pub sites: Vec<DefSite>,
    /// Fact number of a `(stmt, sym)` definition.
    pub site_index: HashMap<(StmtId, Sym), usize>,
    /// Fact numbers per symbol.
    pub by_sym: HashMap<Sym, Vec<usize>>,
    /// Per-block generated facts (kept for incremental re-solves).
    pub gen: Vec<BitSet>,
    /// Per-block killed facts (kept for incremental re-solves).
    pub kill: Vec<BitSet>,
    /// Block-level solution (facts at block entry/exit).
    pub sol: Solution,
}

/// Enumerate definition sites of the live program.
pub fn def_sites(prog: &Program) -> Vec<DefSite> {
    let mut out = Vec::new();
    for s in prog.attached_stmts() {
        let du = stmt_def_use(prog, s);
        for sym in du.def_scalars {
            out.push(DefSite {
                stmt: s,
                sym,
                is_array: false,
            });
        }
        for sym in du.def_arrays {
            out.push(DefSite {
                stmt: s,
                sym,
                is_array: true,
            });
        }
    }
    out
}

/// Compute reaching definitions over the CFG (sequentially).
pub fn compute(prog: &Program, cfg: &Cfg) -> ReachingDefs {
    compute_with(prog, cfg, &pivot_par::Pool::sequential())
}

/// Compute reaching definitions over the CFG, fanning the per-block
/// transfer-set construction and the dataflow rounds out over `pool` when
/// the CFG is large enough. Transfer sets are a pure function of the block,
/// assembled positionally, and the parallel solve reaches the identical
/// fixpoint ([`solve_with`]) — so the result is bit-identical to
/// [`compute`] at any thread count.
pub fn compute_with(prog: &Program, cfg: &Cfg, pool: &pivot_par::Pool) -> ReachingDefs {
    let sites = def_sites(prog);
    let universe = sites.len();
    let mut site_index = HashMap::with_capacity(universe);
    let mut by_sym: HashMap<Sym, Vec<usize>> = HashMap::new();
    for (i, d) in sites.iter().enumerate() {
        site_index.insert((d.stmt, d.sym), i);
        by_sym.entry(d.sym).or_default().push(i);
    }

    let n = cfg.len();
    let mut gen: Vec<BitSet> = Vec::with_capacity(n);
    let mut kill: Vec<BitSet> = Vec::with_capacity(n);
    if pool.is_sequential() || n < PAR_MIN_BLOCKS {
        for b in cfg.ids() {
            let (g, k) = block_transfer(prog, cfg, b, &sites, &site_index, &by_sym, universe);
            gen.push(g);
            kill.push(k);
        }
    } else {
        // cfg.ids() enumerates blocks in index order, so task i is block i
        // and the positional results land in gen[i]/kill[i] directly.
        let pairs = pool.run(n, |i| {
            let b = crate::cfg::BlockId(i as u32);
            block_transfer(prog, cfg, b, &sites, &site_index, &by_sym, universe)
        });
        for (g, k) in pairs {
            gen.push(g);
            kill.push(k);
        }
    }
    let prob = Problem {
        direction: Direction::Forward,
        meet: Meet::Union,
        universe,
        gen,
        kill,
        boundary: BitSet::new(universe),
    };
    let sol = solve_with(cfg, &prob, pool);
    ReachingDefs {
        sites,
        site_index,
        by_sym,
        gen: prob.gen,
        kill: prob.kill,
        sol,
    }
}

/// Compose the transfer function of a block from its statements in order.
fn block_transfer(
    prog: &Program,
    cfg: &Cfg,
    b: crate::cfg::BlockId,
    sites: &[DefSite],
    site_index: &HashMap<(StmtId, Sym), usize>,
    by_sym: &HashMap<Sym, Vec<usize>>,
    universe: usize,
) -> (BitSet, BitSet) {
    let mut gen = BitSet::new(universe);
    let mut kill = BitSet::new(universe);
    for &s in &cfg.block(b).stmts {
        apply_stmt(prog, s, sites, site_index, by_sym, &mut gen, &mut kill);
    }
    (gen, kill)
}

/// Apply one statement's transfer to running (gen, kill) sets.
fn apply_stmt(
    prog: &Program,
    s: StmtId,
    sites: &[DefSite],
    site_index: &HashMap<(StmtId, Sym), usize>,
    by_sym: &HashMap<Sym, Vec<usize>>,
    gen: &mut BitSet,
    kill: &mut BitSet,
) {
    let du = stmt_def_use(prog, s);
    for sym in du.def_scalars {
        // Definite def: kill all other defs of sym, then gen this one.
        if let Some(facts) = by_sym.get(&sym) {
            for &f in facts {
                if sites[f].stmt != s {
                    gen.remove(f);
                    kill.insert(f);
                }
            }
        }
        if let Some(&f) = site_index.get(&(s, sym)) {
            gen.insert(f);
            kill.remove(f);
        }
    }
    for sym in du.def_arrays {
        // May-def: gen without killing.
        if let Some(&f) = site_index.get(&(s, sym)) {
            gen.insert(f);
        }
    }
}

impl ReachingDefs {
    /// Recompute one block's transfer sets from its current statements
    /// (incremental update of a dirty block; the fact numbering must already
    /// reflect the current program).
    pub fn recompute_block(&mut self, prog: &Program, cfg: &Cfg, b: crate::cfg::BlockId) {
        let (g, k) = block_transfer(
            prog,
            cfg,
            b,
            &self.sites,
            &self.site_index,
            &self.by_sym,
            self.sites.len(),
        );
        self.gen[b.index()] = g;
        self.kill[b.index()] = k;
    }

    /// Facts reaching the **entry of** statement `s` (before it executes),
    /// computed by walking its block from the block's IN.
    pub fn reaching_before(&self, prog: &Program, cfg: &Cfg, s: StmtId) -> BitSet {
        let b = cfg.block_of(s).expect("statement must be in the CFG");
        let mut cur = self.sol.ins[b.index()].clone();
        let mut gen = BitSet::new(cur.universe());
        let mut kill = BitSet::new(cur.universe());
        for &t in &cfg.block(b).stmts {
            if t == s {
                break;
            }
            apply_stmt(
                prog,
                t,
                &self.sites,
                &self.site_index,
                &self.by_sym,
                &mut gen,
                &mut kill,
            );
        }
        cur.subtract(&kill);
        cur.union_with(&gen);
        cur
    }

    /// Statements whose definition of `sym` reaches the entry of `s`.
    pub fn defs_reaching(&self, prog: &Program, cfg: &Cfg, s: StmtId, sym: Sym) -> Vec<StmtId> {
        let reach = self.reaching_before(prog, cfg, s);
        self.by_sym
            .get(&sym)
            .map(|facts| {
                facts
                    .iter()
                    .filter(|&&f| reach.contains(f))
                    .map(|&f| self.sites[f].stmt)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use pivot_lang::parser::parse;

    fn setup(src: &str) -> (Program, Cfg, ReachingDefs) {
        let p = parse(src).unwrap();
        let cfg = build(&p);
        let rd = compute(&p, &cfg);
        (p, cfg, rd)
    }

    #[test]
    fn later_def_kills_earlier() {
        let (p, cfg, rd) = setup("x = 1\nx = 2\nwrite x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        let defs = rd.defs_reaching(&p, &cfg, ss[2], x);
        assert_eq!(defs, vec![ss[1]]);
    }

    #[test]
    fn branch_merges_defs() {
        let (p, cfg, rd) =
            setup("read c\nif (c > 0) then\n  x = 1\nelse\n  x = 2\nendif\nwrite x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        let mut defs = rd.defs_reaching(&p, &cfg, ss[4], x);
        defs.sort();
        assert_eq!(defs, vec![ss[2], ss[3]]);
    }

    #[test]
    fn loop_carried_def_reaches_header_and_body() {
        let (p, cfg, rd) = setup("x = 0\ndo i = 1, 5\n  x = x + 1\nenddo\nwrite x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        // At the body statement, both the init and the loop-carried def reach.
        let mut defs = rd.defs_reaching(&p, &cfg, ss[2], x);
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[2]]);
        // After the loop, both still reach (the loop may run zero times as
        // far as the analysis knows).
        let mut defs = rd.defs_reaching(&p, &cfg, ss[3], x);
        defs.sort();
        assert_eq!(defs, vec![ss[0], ss[2]]);
    }

    #[test]
    fn array_defs_accumulate() {
        let (p, cfg, rd) = setup("A(1) = 1\nA(2) = 2\nwrite A(1)\n");
        let ss = p.attached_stmts();
        let a = p.symbols.get("A").unwrap();
        let mut defs = rd.defs_reaching(&p, &cfg, ss[2], a);
        defs.sort();
        // Both may-defs reach: array stores do not kill each other.
        assert_eq!(defs, vec![ss[0], ss[1]]);
    }

    #[test]
    fn within_block_ordering() {
        let (p, cfg, rd) = setup("x = 1\ny = x\nx = 2\nz = x\n");
        let ss = p.attached_stmts();
        let x = p.symbols.get("x").unwrap();
        assert_eq!(rd.defs_reaching(&p, &cfg, ss[1], x), vec![ss[0]]);
        assert_eq!(rd.defs_reaching(&p, &cfg, ss[3], x), vec![ss[2]]);
    }

    #[test]
    fn loop_header_defines_induction() {
        let (p, cfg, rd) = setup("do i = 1, 5\n  x = i\nenddo\nwrite i\n");
        let ss = p.attached_stmts();
        let i = p.symbols.get("i").unwrap();
        let defs = rd.defs_reaching(&p, &cfg, ss[1], i);
        assert_eq!(defs, vec![ss[0]]);
    }

    #[test]
    fn def_sites_enumeration() {
        let p = parse("x = 1\nA(i) = 2\nread y\ndo k = 1, 2\nenddo\n").unwrap();
        let sites = def_sites(&p);
        assert_eq!(sites.len(), 4);
        assert_eq!(sites.iter().filter(|d| d.is_array).count(), 1);
    }
}

//! Loop structure utilities: bounds, trip counts, tight nesting, adjacency,
//! conformability — the pre-condition vocabulary of the high-level
//! transformations (ICM, INX, FUS, LUR, SMI).

use pivot_lang::{Program, StmtId, StmtKind, Sym};

/// Constant-bound description of a `do` loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConstBounds {
    /// Lower bound.
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
    /// Step (never 0).
    pub step: i64,
}

impl ConstBounds {
    /// Number of iterations executed.
    pub fn trip_count(&self) -> i64 {
        if self.step > 0 {
            if self.lo > self.hi {
                0
            } else {
                (self.hi - self.lo) / self.step + 1
            }
        } else if self.lo < self.hi {
            0
        } else {
            (self.lo - self.hi) / (-self.step) + 1
        }
    }
}

/// Is this statement a `do` loop?
pub fn is_loop(prog: &Program, s: StmtId) -> bool {
    matches!(prog.stmt(s).kind, StmtKind::DoLoop { .. })
}

/// The induction variable of a loop.
pub fn loop_var(prog: &Program, s: StmtId) -> Option<Sym> {
    match &prog.stmt(s).kind {
        StmtKind::DoLoop { var, .. } => Some(*var),
        _ => None,
    }
}

/// The body of a loop.
pub fn loop_body(prog: &Program, s: StmtId) -> Option<&Vec<StmtId>> {
    match &prog.stmt(s).kind {
        StmtKind::DoLoop { body, .. } => Some(body),
        _ => None,
    }
}

/// Constant bounds of a loop, if all of lo/hi/step are literal constants.
pub fn const_bounds(prog: &Program, s: StmtId) -> Option<ConstBounds> {
    match &prog.stmt(s).kind {
        StmtKind::DoLoop { lo, hi, step, .. } => {
            let lo = prog.const_eval(*lo)?;
            let hi = prog.const_eval(*hi)?;
            let step = match step {
                Some(e) => prog.const_eval(*e)?,
                None => 1,
            };
            if step == 0 {
                return None;
            }
            Some(ConstBounds { lo, hi, step })
        }
        _ => None,
    }
}

/// Tight nesting: the outer loop's body is exactly one statement, which is
/// an inner `do` loop. Returns the inner loop.
pub fn tightly_nested_inner(prog: &Program, outer: StmtId) -> Option<StmtId> {
    match loop_body(prog, outer)?.as_slice() {
        [only] if is_loop(prog, *only) => Some(*only),
        _ => None,
    }
}

/// Are `(outer, inner)` a tightly nested pair?
pub fn is_tightly_nested(prog: &Program, outer: StmtId, inner: StmtId) -> bool {
    tightly_nested_inner(prog, outer) == Some(inner)
}

/// Two loops are *conformable* for fusion when their headers iterate the
/// same space: structurally equal lo/hi/step and the same induction variable.
pub fn conformable(prog: &Program, l1: StmtId, l2: StmtId) -> bool {
    use pivot_lang::equiv::exprs_equal_in;
    match (&prog.stmt(l1).kind, &prog.stmt(l2).kind) {
        (
            StmtKind::DoLoop {
                var: v1,
                lo: lo1,
                hi: h1,
                step: s1,
                ..
            },
            StmtKind::DoLoop {
                var: v2,
                lo: lo2,
                hi: h2,
                step: s2,
                ..
            },
        ) => {
            v1 == v2
                && exprs_equal_in(prog, *lo1, *lo2)
                && exprs_equal_in(prog, *h1, *h2)
                && match (s1, s2) {
                    (None, None) => true,
                    (Some(a), Some(b)) => exprs_equal_in(prog, *a, *b),
                    _ => false,
                }
        }
        _ => false,
    }
}

/// Adjacent sibling loops: `l2` immediately follows `l1` in the same block.
pub fn adjacent(prog: &Program, l1: StmtId, l2: StmtId) -> bool {
    prog.next_sibling(l1) == Some(l2)
}

/// The loop nest (enclosing `do` loops, **outermost first**) common to two
/// statements.
pub fn common_loops(prog: &Program, a: StmtId, b: StmtId) -> Vec<StmtId> {
    let mut la = prog.enclosing_loops(a); // innermost first
    let mut lb = prog.enclosing_loops(b);
    la.reverse();
    lb.reverse();
    la.into_iter()
        .zip(lb)
        .take_while(|(x, y)| x == y)
        .map(|(x, _)| x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    #[test]
    fn trip_counts() {
        assert_eq!(
            ConstBounds {
                lo: 1,
                hi: 100,
                step: 1
            }
            .trip_count(),
            100
        );
        assert_eq!(
            ConstBounds {
                lo: 0,
                hi: 10,
                step: 3
            }
            .trip_count(),
            4
        );
        assert_eq!(
            ConstBounds {
                lo: 5,
                hi: 1,
                step: 1
            }
            .trip_count(),
            0
        );
        assert_eq!(
            ConstBounds {
                lo: 5,
                hi: 1,
                step: -2
            }
            .trip_count(),
            3
        );
        assert_eq!(
            ConstBounds {
                lo: 1,
                hi: 5,
                step: -1
            }
            .trip_count(),
            0
        );
    }

    #[test]
    fn const_bounds_extraction() {
        let p =
            parse("do i = 1, 100\nenddo\ndo j = 0, 10, 2\nenddo\ndo k = 1, n\nenddo\n").unwrap();
        assert_eq!(
            const_bounds(&p, p.body[0]),
            Some(ConstBounds {
                lo: 1,
                hi: 100,
                step: 1
            })
        );
        assert_eq!(
            const_bounds(&p, p.body[1]),
            Some(ConstBounds {
                lo: 0,
                hi: 10,
                step: 2
            })
        );
        assert_eq!(const_bounds(&p, p.body[2]), None);
    }

    #[test]
    fn tight_nesting_detection() {
        let p = parse(
            "do i = 1, 5\n  do j = 1, 5\n    A(i, j) = 0\n  enddo\nenddo\ndo k = 1, 5\n  x = k\n  do m = 1, 2\n  enddo\nenddo\n",
        )
        .unwrap();
        let outer1 = p.body[0];
        let inner1 = loop_body(&p, outer1).unwrap()[0];
        assert!(is_tightly_nested(&p, outer1, inner1));
        let outer2 = p.body[1];
        assert_eq!(tightly_nested_inner(&p, outer2), None);
    }

    #[test]
    fn conformable_loops() {
        let p = parse(
            "do i = 1, 10\n  A(i) = 0\nenddo\ndo i = 1, 10\n  B(i) = 0\nenddo\ndo j = 1, 10\n  C(j) = 0\nenddo\ndo i = 1, 11\n  D(i) = 0\nenddo\n",
        )
        .unwrap();
        assert!(conformable(&p, p.body[0], p.body[1]));
        assert!(!conformable(&p, p.body[0], p.body[2])); // different var
        assert!(!conformable(&p, p.body[0], p.body[3])); // different hi
        assert!(adjacent(&p, p.body[0], p.body[1]));
        assert!(!adjacent(&p, p.body[1], p.body[0]));
    }

    #[test]
    fn common_loop_nest() {
        let p = parse(
            "do i = 1, 5\n  do j = 1, 5\n    A(i, j) = 1\n    B(i, j) = 2\n  enddo\n  x = i\nenddo\n",
        )
        .unwrap();
        let outer = p.body[0];
        let inner = loop_body(&p, outer).unwrap()[0];
        let a = loop_body(&p, inner).unwrap()[0];
        let b = loop_body(&p, inner).unwrap()[1];
        let x = loop_body(&p, outer).unwrap()[1];
        assert_eq!(common_loops(&p, a, b), vec![outer, inner]);
        assert_eq!(common_loops(&p, a, x), vec![outer]);
    }
}

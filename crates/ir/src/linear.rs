//! Affine (linear) forms of subscript expressions.
//!
//! Dependence tests need subscripts as `c0 + Σ ci·vi`. Expressions that do
//! not fit (products of variables, division, array reads) yield `None` and
//! the dependence tester falls back to "assume dependence".

use pivot_lang::{BinOp, ExprId, ExprKind, Program, Sym, UnOp};
use std::collections::BTreeMap;

/// An affine form `constant + Σ coeff·sym`. Zero coefficients are not stored.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Linear {
    /// Constant term.
    pub constant: i64,
    /// Per-symbol coefficients (sorted map for deterministic iteration).
    pub coeffs: BTreeMap<Sym, i64>,
}

impl Linear {
    /// The constant form.
    pub fn constant(c: i64) -> Self {
        Linear {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// The form `1·sym`.
    pub fn var(sym: Sym) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(sym, 1);
        Linear {
            constant: 0,
            coeffs,
        }
    }

    /// Coefficient of `sym` (0 when absent).
    pub fn coeff(&self, sym: Sym) -> i64 {
        self.coeffs.get(&sym).copied().unwrap_or(0)
    }

    /// True if the form has no variable terms.
    pub fn is_const(&self) -> bool {
        self.coeffs.is_empty()
    }

    fn add(mut self, other: &Linear) -> Self {
        self.constant = self.constant.wrapping_add(other.constant);
        for (&s, &c) in &other.coeffs {
            let e = self.coeffs.entry(s).or_insert(0);
            *e = e.wrapping_add(c);
            if *e == 0 {
                self.coeffs.remove(&s);
            }
        }
        self
    }

    fn scale(mut self, k: i64) -> Self {
        if k == 0 {
            return Linear::constant(0);
        }
        self.constant = self.constant.wrapping_mul(k);
        for c in self.coeffs.values_mut() {
            *c = c.wrapping_mul(k);
        }
        self
    }

    fn negate(self) -> Self {
        self.scale(-1)
    }

    /// `self − other`.
    pub fn sub(&self, other: &Linear) -> Linear {
        self.clone().add(&other.clone().negate())
    }

    /// The form restricted to symbols **not** in `vars` (the symbolic part).
    pub fn without(&self, vars: &[Sym]) -> Linear {
        Linear {
            constant: self.constant,
            coeffs: self
                .coeffs
                .iter()
                .filter(|(s, _)| !vars.contains(s))
                .map(|(&s, &c)| (s, c))
                .collect(),
        }
    }
}

/// Extract the affine form of an expression, if it is affine.
pub fn linearize(prog: &Program, e: ExprId) -> Option<Linear> {
    match &prog.expr(e).kind {
        ExprKind::Const(c) => Some(Linear::constant(*c)),
        ExprKind::Var(v) => Some(Linear::var(*v)),
        ExprKind::Index(..) => None,
        ExprKind::Unary(UnOp::Neg, a) => Some(linearize(prog, *a)?.negate()),
        ExprKind::Unary(UnOp::Not, _) => None,
        ExprKind::Binary(op, a, b) => {
            let la = linearize(prog, *a)?;
            let lb = linearize(prog, *b)?;
            match op {
                BinOp::Add => Some(la.add(&lb)),
                BinOp::Sub => Some(la.add(&lb.negate())),
                BinOp::Mul => {
                    if la.is_const() {
                        Some(lb.scale(la.constant))
                    } else if lb.is_const() {
                        Some(la.scale(lb.constant))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    fn rhs(p: &Program) -> ExprId {
        match p.stmt(p.body[0]).kind {
            pivot_lang::StmtKind::Assign { value, .. } => value,
            _ => unreachable!(),
        }
    }

    #[test]
    fn simple_forms() {
        let p = parse("x = 2 * i + 3\n").unwrap();
        let l = linearize(&p, rhs(&p)).unwrap();
        let i = p.symbols.get("i").unwrap();
        assert_eq!(l.constant, 3);
        assert_eq!(l.coeff(i), 2);
    }

    #[test]
    fn subtraction_and_negation() {
        let p = parse("x = 10 - 2 * (j - 1)\n").unwrap();
        let l = linearize(&p, rhs(&p)).unwrap();
        let j = p.symbols.get("j").unwrap();
        assert_eq!(l.constant, 12);
        assert_eq!(l.coeff(j), -2);
    }

    #[test]
    fn cancellation_removes_entry() {
        let p = parse("x = i - i + 5\n").unwrap();
        let l = linearize(&p, rhs(&p)).unwrap();
        assert!(l.is_const());
        assert_eq!(l.constant, 5);
    }

    #[test]
    fn nonlinear_rejected() {
        for src in ["x = i * j\n", "x = i / 2\n", "x = A(i)\n", "x = i % 3\n"] {
            let p = parse(src).unwrap();
            assert!(linearize(&p, rhs(&p)).is_none(), "{src}");
        }
    }

    #[test]
    fn sub_and_without() {
        let p = parse("x = 2 * i + j + 7\n").unwrap();
        let l = linearize(&p, rhs(&p)).unwrap();
        let i = p.symbols.get("i").unwrap();
        let j = p.symbols.get("j").unwrap();
        let diff = l.sub(&Linear::var(j));
        assert_eq!(diff.coeff(j), 0);
        assert_eq!(diff.coeff(i), 2);
        let sym = l.without(&[i]);
        assert_eq!(sym.coeff(i), 0);
        assert_eq!(sym.coeff(j), 1);
        assert_eq!(sym.constant, 7);
    }

    #[test]
    fn unary_neg() {
        let p = parse("x = -i + 4\n").unwrap();
        let l = linearize(&p, rhs(&p)).unwrap();
        let i = p.symbols.get("i").unwrap();
        assert_eq!(l.coeff(i), -1);
        assert_eq!(l.constant, 4);
    }
}

//! Dense bitset used by the dataflow framework.
//!
//! Word-packed, allocation-light, with the bulk operations dataflow needs
//! (`union_with`, `intersect_with`, `subtract`) returning whether the set
//! changed — the termination test of the iterative solver.

/// A fixed-universe dense bitset.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Set bit `i`. Returns true if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old != self.words[w]
    }

    /// Clear bit `i`. Returns true if it was previously set.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old != self.words[w]
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Set all bits (universal set).
    pub fn fill(&mut self) {
        self.words.fill(!0);
        self.trim();
    }

    fn trim(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// `self |= other`. Returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= old != *a;
        }
        changed
    }

    /// `self &= other`. Returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a &= b;
            changed |= old != *a;
        }
        changed
    }

    /// `self -= other` (clear every bit set in `other`).
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Change the universe size in place, keeping the bits that survive.
    /// Growing leaves new indices clear; shrinking drops bits past the new
    /// end. The incremental layer uses this when an analysis universe grows
    /// (liveness facts are interned symbols, and the interner only appends).
    pub fn resize(&mut self, new_len: usize) {
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
        self.trim();
    }

    /// Copy `other` into `self`.
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Build from indices; the universe is sized to the maximum index + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(5);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn intersect_and_subtract() {
        let mut a: BitSet = [1, 2, 3, 70].into_iter().collect();
        let mut b = BitSet::new(a.universe());
        b.insert(2);
        b.insert(70);
        assert!(a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 70]);
        a.subtract(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn fill_respects_universe() {
        let mut s = BitSet::new(67);
        s.fill();
        assert_eq!(s.count(), 67);
        assert!(s.contains(66));
    }

    #[test]
    fn fill_multiple_of_64() {
        let mut s = BitSet::new(128);
        s.fill();
        assert_eq!(s.count(), 128);
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [64, 0, 7, 128].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 7, 64, 128]);
    }

    #[test]
    fn copy_from() {
        let a: BitSet = [1, 5].into_iter().collect();
        let mut b = BitSet::new(a.universe());
        b.insert(3);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut s: BitSet = [0, 63, 64, 100].into_iter().collect();
        s.resize(130);
        assert_eq!(s.universe(), 130);
        assert!(s.insert(129));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 100, 129]);
        s.resize(64);
        assert_eq!(s.universe(), 64);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63]);
        s.fill();
        assert_eq!(s.count(), 64);
    }

    #[test]
    fn empty_universe() {
        let mut s = BitSet::new(0);
        s.fill();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}

//! Per-statement definition/use summaries.
//!
//! Every analysis (reaching definitions, liveness, dependence testing, the
//! transformation detectors) needs to know what a statement defines and uses.
//! Arrays are handled at two precisions: a coarse whole-array summary here
//! (sound for scalar dataflow), and subscript-precise access descriptors in
//! [`crate::depend`] for dependence testing.

use pivot_lang::{ExprKind, Program, StmtId, StmtKind, Sym};

/// What a single statement defines and uses, at whole-variable granularity.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    /// Scalars definitely defined (assign target, read target, loop variable).
    pub def_scalars: Vec<Sym>,
    /// Arrays possibly written (one element).
    pub def_arrays: Vec<Sym>,
    /// Scalars read.
    pub use_scalars: Vec<Sym>,
    /// Arrays read (some element).
    pub use_arrays: Vec<Sym>,
    /// True if the statement performs I/O (`read`/`write`), which pins its
    /// relative order (legal transformations may not reorder I/O).
    pub io: bool,
}

impl DefUse {
    /// True if `sym` is in the definite scalar defs.
    pub fn defines_scalar(&self, sym: Sym) -> bool {
        self.def_scalars.contains(&sym)
    }

    /// True if `sym` is used as a scalar or read as an array.
    pub fn uses(&self, sym: Sym) -> bool {
        self.use_scalars.contains(&sym) || self.use_arrays.contains(&sym)
    }

    /// True if `sym` is defined (scalar or array element).
    pub fn defines(&self, sym: Sym) -> bool {
        self.def_scalars.contains(&sym) || self.def_arrays.contains(&sym)
    }
}

fn collect_expr(prog: &Program, e: pivot_lang::ExprId, du: &mut DefUse) {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match &prog.expr(e).kind {
            ExprKind::Const(_) => {}
            ExprKind::Var(v) => du.use_scalars.push(*v),
            ExprKind::Index(a, subs) => {
                du.use_arrays.push(*a);
                stack.extend(subs.iter().copied());
            }
            ExprKind::Unary(_, a) => stack.push(*a),
            ExprKind::Binary(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
        }
    }
}

fn dedup(v: &mut Vec<Sym>) {
    v.sort_unstable();
    v.dedup();
}

/// Compute the def/use summary of one statement.
///
/// For compound statements (`do`, `if`) this covers only the **header**: the
/// loop bounds/step and induction variable, or the branch condition — not the
/// body. Body statements have their own summaries; analyses that need a
/// subtree summary use [`subtree_def_use`].
pub fn stmt_def_use(prog: &Program, id: StmtId) -> DefUse {
    let mut du = DefUse::default();
    match &prog.stmt(id).kind {
        StmtKind::Assign { target, value } => {
            collect_expr(prog, *value, &mut du);
            for &s in &target.subs {
                collect_expr(prog, s, &mut du);
            }
            if target.is_scalar() {
                du.def_scalars.push(target.var);
            } else {
                du.def_arrays.push(target.var);
            }
        }
        StmtKind::Read { target } => {
            for &s in &target.subs {
                collect_expr(prog, s, &mut du);
            }
            if target.is_scalar() {
                du.def_scalars.push(target.var);
            } else {
                du.def_arrays.push(target.var);
            }
            du.io = true;
        }
        StmtKind::Write { value } => {
            collect_expr(prog, *value, &mut du);
            du.io = true;
        }
        StmtKind::DoLoop {
            var, lo, hi, step, ..
        } => {
            collect_expr(prog, *lo, &mut du);
            collect_expr(prog, *hi, &mut du);
            if let Some(st) = step {
                collect_expr(prog, *st, &mut du);
            }
            du.def_scalars.push(*var);
        }
        StmtKind::If { cond, .. } => {
            collect_expr(prog, *cond, &mut du);
        }
    }
    dedup(&mut du.def_scalars);
    dedup(&mut du.def_arrays);
    dedup(&mut du.use_scalars);
    dedup(&mut du.use_arrays);
    du
}

/// Def/use summary of a whole statement subtree (header plus all nested
/// statements). Used for loop-invariance and region-level screening.
pub fn subtree_def_use(prog: &Program, id: StmtId) -> DefUse {
    let mut du = DefUse::default();
    for s in prog.subtree(id) {
        let one = stmt_def_use(prog, s);
        du.def_scalars.extend(one.def_scalars);
        du.def_arrays.extend(one.def_arrays);
        du.use_scalars.extend(one.use_scalars);
        du.use_arrays.extend(one.use_arrays);
        du.io |= one.io;
    }
    dedup(&mut du.def_scalars);
    dedup(&mut du.def_arrays);
    dedup(&mut du.use_scalars);
    dedup(&mut du.use_arrays);
    du
}

/// True if the expression subtree contains a division or modulus (which can
/// fault) — code containing one must not be deleted, duplicated onto new
/// paths, or hoisted past a guard.
pub fn expr_can_fault(prog: &Program, e: pivot_lang::ExprId) -> bool {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match &prog.expr(e).kind {
            ExprKind::Binary(op, a, b) => {
                if matches!(op, pivot_lang::BinOp::Div | pivot_lang::BinOp::Mod) {
                    return true;
                }
                stack.push(*a);
                stack.push(*b);
            }
            ExprKind::Unary(_, a) => stack.push(*a),
            ExprKind::Index(_, subs) => stack.extend(subs.iter().copied()),
            _ => {}
        }
    }
    false
}

/// True if any expression of the statement (header only) can fault.
pub fn stmt_can_fault(prog: &Program, id: StmtId) -> bool {
    prog.stmt_expr_roots(id)
        .into_iter()
        .any(|e| expr_can_fault(prog, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    fn prog_and_stmts(src: &str) -> (Program, Vec<StmtId>) {
        let p = parse(src).unwrap();
        let ss = p.attached_stmts();
        (p, ss)
    }

    fn names(p: &Program, syms: &[Sym]) -> Vec<String> {
        let mut v: Vec<String> = syms.iter().map(|&s| p.symbols.name(s).to_owned()).collect();
        v.sort();
        v
    }

    #[test]
    fn assign_def_use() {
        let (p, ss) = prog_and_stmts("x = a + b * x\n");
        let du = stmt_def_use(&p, ss[0]);
        assert_eq!(names(&p, &du.def_scalars), vec!["x"]);
        assert_eq!(names(&p, &du.use_scalars), vec!["a", "b", "x"]);
        assert!(!du.io);
    }

    #[test]
    fn array_assign_def_use() {
        let (p, ss) = prog_and_stmts("A(i + 1) = B(j) + c\n");
        let du = stmt_def_use(&p, ss[0]);
        assert_eq!(names(&p, &du.def_arrays), vec!["A"]);
        assert_eq!(names(&p, &du.use_arrays), vec!["B"]);
        assert_eq!(names(&p, &du.use_scalars), vec!["c", "i", "j"]);
        assert!(du.def_scalars.is_empty());
    }

    #[test]
    fn read_write_are_io() {
        let (p, ss) = prog_and_stmts("read x\nwrite x + 1\n");
        let r = stmt_def_use(&p, ss[0]);
        assert!(r.io);
        assert_eq!(names(&p, &r.def_scalars), vec!["x"]);
        let w = stmt_def_use(&p, ss[1]);
        assert!(w.io);
        assert_eq!(names(&p, &w.use_scalars), vec!["x"]);
        assert!(w.def_scalars.is_empty());
    }

    #[test]
    fn loop_header_defines_induction_var() {
        let (p, ss) = prog_and_stmts("do i = lo, hi, st\n  x = i\nenddo\n");
        let du = stmt_def_use(&p, ss[0]);
        assert_eq!(names(&p, &du.def_scalars), vec!["i"]);
        assert_eq!(names(&p, &du.use_scalars), vec!["hi", "lo", "st"]);
        // Header summary does not include the body.
        assert!(!du.defines_scalar(p.symbols.get("x").unwrap()));
    }

    #[test]
    fn subtree_summary_includes_body() {
        let (p, ss) = prog_and_stmts("do i = 1, 9\n  x = A(i)\n  B(i) = x\nenddo\n");
        let du = subtree_def_use(&p, ss[0]);
        assert_eq!(names(&p, &du.def_scalars), vec!["i", "x"]);
        assert_eq!(names(&p, &du.def_arrays), vec!["B"]);
        assert_eq!(names(&p, &du.use_arrays), vec!["A"]);
    }

    #[test]
    fn fault_detection() {
        let (p, ss) = prog_and_stmts("x = a / b\ny = a + b\nz = A(i % 2)\n");
        assert!(stmt_can_fault(&p, ss[0]));
        assert!(!stmt_can_fault(&p, ss[1]));
        assert!(stmt_can_fault(&p, ss[2]));
    }

    #[test]
    fn if_header_uses_condition_only() {
        let (p, ss) = prog_and_stmts("if (x > 0) then\n  y = 1\nendif\n");
        let du = stmt_def_use(&p, ss[0]);
        assert_eq!(names(&p, &du.use_scalars), vec!["x"]);
        assert!(du.def_scalars.is_empty());
    }
}

//! Data dependence analysis: array subscript tests (ZIV, strong SIV, weak
//! SIV/GCD, MIV/GCD), direction vectors, scalar dependences, and the
//! legality screens for loop interchange and fusion.
//!
//! Precision notes (documented simplifications, standard for this class of
//! tester):
//! * per-dimension tests only (no coupled-subscript Delta test) — coupled
//!   subscripts merge conservatively;
//! * symbolic terms must cancel syntactically, otherwise the dimension is
//!   unconstrained;
//! * scalar (non-induction) definitions inside a nest conservatively block
//!   interchange/fusion.

use crate::linear::{linearize, Linear};
use crate::loops::{common_loops, const_bounds, loop_body, loop_var, ConstBounds};
use pivot_lang::{ExprId, Program, StmtId, StmtKind, Sym};

/// Dependence kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// True/flow dependence (write → read).
    Flow,
    /// Anti dependence (read → write).
    Anti,
    /// Output dependence (write → write).
    Output,
}

/// Direction of a dependence at one loop level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Source iteration earlier (`<`).
    Lt,
    /// Same iteration (`=`).
    Eq,
    /// Source iteration later (`>`).
    Gt,
    /// Unknown (`*`).
    Star,
}

impl Dir {
    /// Symbol for dumps.
    pub fn symbol(self) -> char {
        match self {
            Dir::Lt => '<',
            Dir::Eq => '=',
            Dir::Gt => '>',
            Dir::Star => '*',
        }
    }

    /// Can this direction be `d` for some iteration pair?
    pub fn allows(self, d: Dir) -> bool {
        self == Dir::Star || self == d
    }
}

/// One array access site.
#[derive(Clone, Debug)]
pub struct Access {
    /// Containing statement.
    pub stmt: StmtId,
    /// Array symbol.
    pub var: Sym,
    /// Subscript expressions.
    pub subs: Vec<ExprId>,
    /// True for a store.
    pub is_write: bool,
}

/// Collect all array accesses in a statement subtree (or several).
pub fn collect_accesses(prog: &Program, roots: &[StmtId]) -> Vec<Access> {
    let mut out = Vec::new();
    for &root in roots {
        for s in prog.subtree(root) {
            collect_stmt_accesses(prog, s, &mut out);
        }
    }
    out
}

fn collect_expr_accesses(prog: &Program, e: ExprId, stmt: StmtId, out: &mut Vec<Access>) {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match &prog.expr(e).kind {
            pivot_lang::ExprKind::Index(a, subs) => {
                out.push(Access {
                    stmt,
                    var: *a,
                    subs: subs.clone(),
                    is_write: false,
                });
                stack.extend(subs.iter().copied());
            }
            pivot_lang::ExprKind::Unary(_, a) => stack.push(*a),
            pivot_lang::ExprKind::Binary(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            _ => {}
        }
    }
}

fn collect_stmt_accesses(prog: &Program, s: StmtId, out: &mut Vec<Access>) {
    match &prog.stmt(s).kind {
        StmtKind::Assign { target, value } => {
            collect_expr_accesses(prog, *value, s, out);
            for &sub in &target.subs {
                collect_expr_accesses(prog, sub, s, out);
            }
            if !target.is_scalar() {
                out.push(Access {
                    stmt: s,
                    var: target.var,
                    subs: target.subs.clone(),
                    is_write: true,
                });
            }
        }
        StmtKind::Read { target } => {
            for &sub in &target.subs {
                collect_expr_accesses(prog, sub, s, out);
            }
            if !target.is_scalar() {
                out.push(Access {
                    stmt: s,
                    var: target.var,
                    subs: target.subs.clone(),
                    is_write: true,
                });
            }
        }
        StmtKind::Write { value } => collect_expr_accesses(prog, *value, s, out),
        StmtKind::DoLoop { lo, hi, step, .. } => {
            collect_expr_accesses(prog, *lo, s, out);
            collect_expr_accesses(prog, *hi, s, out);
            if let Some(st) = step {
                collect_expr_accesses(prog, *st, s, out);
            }
        }
        StmtKind::If { cond, .. } => collect_expr_accesses(prog, *cond, s, out),
    }
}

/// One alignment level for the pair test: induction variable as seen by the
/// source access, by the destination access, and known bounds (assumed to be
/// the same iteration space for both — callers ensure conformability).
#[derive(Clone, Debug)]
pub struct Level {
    /// Induction variable in the source's subscripts.
    pub var_src: Sym,
    /// Induction variable in the destination's subscripts.
    pub var_dst: Sym,
    /// Constant bounds, when known.
    pub bounds: Option<ConstBounds>,
}

/// Result of testing one access pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PairResult {
    /// Proven independent.
    Independent,
    /// Possible dependence with this direction constraint per level
    /// (outermost first).
    Dep(Vec<Dir>),
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Test a pair of accesses to the same array across aligned loop levels.
/// `other_loop_vars` are induction variables of loops enclosing either
/// access that are *not* alignment levels (their occurrence in a subscript
/// makes the dimension unconstrained).
pub fn test_pair(
    prog: &Program,
    src: &Access,
    dst: &Access,
    levels: &[Level],
    other_loop_vars: &[Sym],
) -> PairResult {
    debug_assert_eq!(src.var, dst.var);
    if src.subs.len() != dst.subs.len() {
        // Ragged use of the same array: be conservative.
        return PairResult::Dep(vec![Dir::Star; levels.len()]);
    }
    // None = unconstrained so far.
    let mut constraint: Vec<Option<Dir>> = vec![None; levels.len()];
    for (sa, sb) in src.subs.iter().zip(&dst.subs) {
        let (la, lb) = match (linearize(prog, *sa), linearize(prog, *sb)) {
            (Some(a), Some(b)) => (a, b),
            _ => continue, // non-affine: no information from this dimension
        };
        match test_dimension(&la, &lb, levels, other_loop_vars) {
            DimResult::Independent => return PairResult::Independent,
            DimResult::NoConstraint => {}
            DimResult::Constrain(level, d) => match constraint[level] {
                None => constraint[level] = Some(d),
                Some(prev) if prev == d => {}
                Some(_) => return PairResult::Independent, // conflicting equalities
            },
        }
    }
    PairResult::Dep(
        constraint
            .into_iter()
            .map(|c| c.unwrap_or(Dir::Star))
            .collect(),
    )
}

enum DimResult {
    Independent,
    NoConstraint,
    Constrain(usize, Dir),
}

fn test_dimension(
    la: &Linear,
    lb: &Linear,
    levels: &[Level],
    other_loop_vars: &[Sym],
) -> DimResult {
    // If a subscript mentions a loop variable that is not an alignment
    // level, the dimension gives no information.
    for (&s, &c) in la.coeffs.iter() {
        if c != 0 && other_loop_vars.contains(&s) && !levels.iter().any(|l| l.var_src == s) {
            return DimResult::NoConstraint;
        }
    }
    for (&s, &c) in lb.coeffs.iter() {
        if c != 0 && other_loop_vars.contains(&s) && !levels.iter().any(|l| l.var_dst == s) {
            return DimResult::NoConstraint;
        }
    }
    // Coefficients per level.
    let src_vars: Vec<Sym> = levels.iter().map(|l| l.var_src).collect();
    let dst_vars: Vec<Sym> = levels.iter().map(|l| l.var_dst).collect();
    let ak: Vec<i64> = levels.iter().map(|l| la.coeff(l.var_src)).collect();
    let bk: Vec<i64> = levels.iter().map(|l| lb.coeff(l.var_dst)).collect();
    // Symbolic residues: everything except the level variables.
    let ra = la.without(&src_vars);
    let rb = lb.without(&dst_vars);
    let diff = rb.sub(&ra); // rb - ra
    if !diff.coeffs.is_empty() {
        // Uncancelled symbolic terms: unknown relation.
        return DimResult::NoConstraint;
    }
    let c = diff.constant; // equation: Σ ak·i_k − Σ bk·i'_k = c
    let involved: Vec<usize> = (0..levels.len())
        .filter(|&k| ak[k] != 0 || bk[k] != 0)
        .collect();
    match involved.as_slice() {
        [] => {
            // ZIV.
            if c != 0 {
                DimResult::Independent
            } else {
                DimResult::NoConstraint
            }
        }
        [k] => {
            let k = *k;
            let (a, b) = (ak[k], bk[k]);
            if a == b {
                // Strong SIV: a(i − i') = c ⇒ i' − i = −c/a.
                if c % a != 0 {
                    return DimResult::Independent;
                }
                let d_val = -c / a; // i' − i in value space
                let lv = &levels[k];
                let step = lv.bounds.map(|b| b.step).unwrap_or(1);
                if step != 0 && d_val % step != 0 {
                    return DimResult::Independent;
                }
                let d_iter = if step != 0 { d_val / step } else { d_val };
                if let Some(bounds) = lv.bounds {
                    if d_iter.abs() >= bounds.trip_count().max(0) {
                        return DimResult::Independent;
                    }
                }
                let dir = match d_iter.cmp(&0) {
                    std::cmp::Ordering::Greater => Dir::Lt,
                    std::cmp::Ordering::Equal => Dir::Eq,
                    std::cmp::Ordering::Less => Dir::Gt,
                };
                DimResult::Constrain(k, dir)
            } else {
                // Weak SIV: GCD feasibility only.
                let g = gcd(a, b);
                if g != 0 && c % g != 0 {
                    DimResult::Independent
                } else {
                    DimResult::NoConstraint
                }
            }
        }
        many => {
            // MIV: GCD test across all involved coefficients.
            let mut g = 0;
            for &k in many {
                g = gcd(g, ak[k]);
                g = gcd(g, bk[k]);
            }
            if g != 0 && c % g != 0 {
                DimResult::Independent
            } else {
                DimResult::NoConstraint
            }
        }
    }
}

/// A dependence edge of the DDG.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Source statement (temporally first).
    pub src: StmtId,
    /// Destination statement.
    pub dst: StmtId,
    /// Kind.
    pub kind: DepKind,
    /// Variable carrying the dependence.
    pub var: Sym,
    /// Direction per common loop, outermost first.
    pub dirs: Vec<Dir>,
}

impl Dependence {
    /// Loop-carried if any level is not `=`.
    pub fn is_carried(&self) -> bool {
        self.dirs.iter().any(|d| !matches!(d, Dir::Eq))
    }
}

/// The data dependence graph of (part of) a program.
#[derive(Clone, Debug, Default)]
pub struct Ddg {
    /// All dependence edges.
    pub deps: Vec<Dependence>,
}

/// Pre-order position map for textual ordering.
fn positions(prog: &Program) -> std::collections::HashMap<StmtId, usize> {
    prog.attached_stmts()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect()
}

fn kind_of(src_write: bool, dst_write: bool) -> DepKind {
    match (src_write, dst_write) {
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (true, true) => DepKind::Output,
        (false, false) => unreachable!("read-read pairs are filtered out"),
    }
}

/// Build the DDG of the live program: array dependences via subscript tests,
/// scalar dependences via textual/common-loop reasoning.
pub fn build_ddg(prog: &Program) -> Ddg {
    let mut ddg = Ddg::default();
    let pos = positions(prog);
    let roots: Vec<StmtId> = prog.body.clone();
    let accesses = collect_accesses(prog, &roots);
    // Array dependences.
    for (i, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(i + 1) {
            if a.var != b.var || (!a.is_write && !b.is_write) {
                continue;
            }
            // Orient by textual position: src = textually earlier.
            let (src, dst) = if pos.get(&a.stmt) <= pos.get(&b.stmt) {
                (a, b)
            } else {
                (b, a)
            };
            let common = common_loops(prog, src.stmt, dst.stmt);
            let levels: Vec<Level> = common
                .iter()
                .map(|&l| Level {
                    var_src: loop_var(prog, l).expect("common loop"),
                    var_dst: loop_var(prog, l).expect("common loop"),
                    bounds: const_bounds(prog, l),
                })
                .collect();
            let other: Vec<Sym> = prog
                .enclosing_loops(src.stmt)
                .into_iter()
                .chain(prog.enclosing_loops(dst.stmt))
                .filter(|l| !common.contains(l))
                .filter_map(|l| loop_var(prog, l))
                .collect();
            match test_pair(prog, src, dst, &levels, &other) {
                PairResult::Independent => {}
                PairResult::Dep(dirs) => {
                    emit_oriented(&mut ddg, prog, &pos, src, dst, dirs);
                }
            }
        }
    }
    // Scalar flow/anti/output dependences (coarse, for the PDG summaries).
    scalar_deps(prog, &pos, &mut ddg);
    ddg
}

/// Emit a dependence in the correct orientation(s) given the direction
/// constraint computed for (src = textually earlier).
fn emit_oriented(
    ddg: &mut Ddg,
    _prog: &Program,
    pos: &std::collections::HashMap<StmtId, usize>,
    src: &Access,
    dst: &Access,
    dirs: Vec<Dir>,
) {
    let leading = dirs.iter().find(|d| !matches!(d, Dir::Eq)).copied();
    match leading {
        None => {
            // Loop-independent: meaningful only in textual order.
            if pos[&src.stmt] < pos[&dst.stmt]
                || (src.stmt == dst.stmt && src.is_write != dst.is_write)
            {
                ddg.deps.push(Dependence {
                    src: src.stmt,
                    dst: dst.stmt,
                    kind: if src.stmt == dst.stmt {
                        // Within one statement the read happens first.
                        DepKind::Anti
                    } else {
                        kind_of(src.is_write, dst.is_write)
                    },
                    var: src.var,
                    dirs,
                });
            }
        }
        Some(Dir::Lt) => {
            ddg.deps.push(Dependence {
                src: src.stmt,
                dst: dst.stmt,
                kind: kind_of(src.is_write, dst.is_write),
                var: src.var,
                dirs,
            });
        }
        Some(Dir::Gt) => {
            // Really a dependence from dst to src: flip.
            let flipped: Vec<Dir> = dirs
                .iter()
                .map(|d| match d {
                    Dir::Lt => Dir::Gt,
                    Dir::Gt => Dir::Lt,
                    x => *x,
                })
                .collect();
            ddg.deps.push(Dependence {
                src: dst.stmt,
                dst: src.stmt,
                kind: kind_of(dst.is_write, src.is_write),
                var: src.var,
                dirs: flipped,
            });
        }
        Some(_) => {
            // Star first: both orientations possible.
            ddg.deps.push(Dependence {
                src: src.stmt,
                dst: dst.stmt,
                kind: kind_of(src.is_write, dst.is_write),
                var: src.var,
                dirs: dirs.clone(),
            });
            if src.stmt != dst.stmt {
                let flipped: Vec<Dir> = dirs
                    .iter()
                    .map(|d| match d {
                        Dir::Lt => Dir::Gt,
                        Dir::Gt => Dir::Lt,
                        x => *x,
                    })
                    .collect();
                ddg.deps.push(Dependence {
                    src: dst.stmt,
                    dst: src.stmt,
                    kind: kind_of(dst.is_write, src.is_write),
                    var: src.var,
                    dirs: flipped,
                });
            }
        }
    }
}

/// Coarse scalar dependences: def→use (flow), use→def (anti), def→def
/// (output), with direction vectors from textual order: textually forward
/// pairs are loop-independent (`=` at all common levels); textually backward
/// pairs are carried by the innermost common loop.
///
/// Statements are indexed per symbol, so the cost is Σ_sym |defs(sym)| ×
/// |touchers(sym)| rather than a full statement-pair sweep.
fn scalar_deps(prog: &Program, pos: &std::collections::HashMap<StmtId, usize>, ddg: &mut Ddg) {
    use crate::access::stmt_def_use;
    use std::collections::BTreeMap;
    let stmts = prog.attached_stmts();
    let dus: Vec<_> = stmts.iter().map(|&s| stmt_def_use(prog, s)).collect();
    // Per-symbol indices of defining / using statement positions (ordered
    // maps keep the DDG deterministic).
    let mut defs_of: BTreeMap<Sym, Vec<usize>> = BTreeMap::new();
    let mut users_of: BTreeMap<Sym, Vec<usize>> = BTreeMap::new();
    for (i, du) in dus.iter().enumerate() {
        for &sym in &du.def_scalars {
            defs_of.entry(sym).or_default().push(i);
        }
        for &sym in &du.use_scalars {
            users_of.entry(sym).or_default().push(i);
        }
    }
    let empty: Vec<usize> = Vec::new();
    for (&sym, defs) in &defs_of {
        let users = users_of.get(&sym).unwrap_or(&empty);
        for &i in defs {
            let si = stmts[i];
            // def → use (flow) and, for textual-forward def pairs, def → def
            // (output).
            for (&j, is_def_pair) in users
                .iter()
                .map(|j| (j, false))
                .chain(defs.iter().map(|j| (j, true)))
            {
                if i == j {
                    continue;
                }
                let sj = stmts[j];
                let common = common_loops(prog, si, sj);
                let forward = pos[&si] < pos[&sj];
                if !forward && common.is_empty() {
                    continue; // no path from si back to sj
                }
                let mut dirs = vec![Dir::Eq; common.len()];
                if !forward {
                    // Carried: iteration must advance at the innermost
                    // common loop.
                    if let Some(last) = dirs.last_mut() {
                        *last = Dir::Lt;
                    }
                }
                if is_def_pair {
                    if forward {
                        ddg.deps.push(Dependence {
                            src: si,
                            dst: sj,
                            kind: DepKind::Output,
                            var: sym,
                            dirs,
                        });
                    }
                } else {
                    ddg.deps.push(Dependence {
                        src: si,
                        dst: sj,
                        kind: DepKind::Flow,
                        var: sym,
                        dirs,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Legality screens
// ---------------------------------------------------------------------

/// Does the subtree contain I/O or scalar (non-induction) definitions?
/// Either conservatively blocks reordering transformations.
fn has_reorder_hazard(prog: &Program, root: StmtId, induction_ok: &[Sym]) -> bool {
    use crate::access::stmt_def_use;
    for s in prog.subtree(root) {
        let du = stmt_def_use(prog, s);
        if du.io {
            return true;
        }
        for d in du.def_scalars {
            if !induction_ok.contains(&d) {
                return true;
            }
        }
    }
    false
}

/// Is interchanging the tightly nested pair `(outer, inner)` legal?
///
/// Illegal iff some dependence between body statements could have direction
/// `(<, >)` on `(outer, inner)` — interchange would reverse it (the paper's
/// INX pre-condition). Scalar definitions and I/O in the body are
/// conservative hazards.
pub fn interchange_legal(prog: &Program, outer: StmtId, inner: StmtId) -> bool {
    if !crate::loops::is_tightly_nested(prog, outer, inner) {
        return false;
    }
    interchange_legal_loose(prog, outer, inner)
}

/// The dependence/hazard part of the interchange check, without requiring
/// tight nesting — used by the undo layer's safety re-check, where an
/// already-interchanged nest may have gained statements between the loops
/// (which breaks its *reversibility* but not its *safety*).
pub fn interchange_legal_loose(prog: &Program, outer: StmtId, inner: StmtId) -> bool {
    let (ov, iv) = match (loop_var(prog, outer), loop_var(prog, inner)) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    if !prog.is_ancestor(outer, inner) {
        return false;
    }
    if has_reorder_hazard(prog, inner, &[ov, iv]) {
        return false;
    }
    // Bounds of the inner loop must not depend on the outer variable
    // (non-rectangular nests are not interchanged).
    if let StmtKind::DoLoop { lo, hi, step, .. } = &prog.stmt(inner).kind {
        let mut used = Vec::new();
        prog.expr_uses(*lo, &mut used);
        prog.expr_uses(*hi, &mut used);
        if let Some(st) = step {
            prog.expr_uses(*st, &mut used);
        }
        if used.contains(&ov) {
            return false;
        }
    }
    let body: Vec<StmtId> = loop_body(prog, inner).cloned().unwrap_or_default();
    let accesses = collect_accesses(prog, &body);
    let levels = [outer, inner].map(|l| Level {
        var_src: loop_var(prog, l).unwrap(),
        var_dst: loop_var(prog, l).unwrap(),
        bounds: const_bounds(prog, l),
    });
    for (i, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(i) {
            if a.var != b.var || (!a.is_write && !b.is_write) {
                continue;
            }
            // Extra (deeper) loops around a/b within the body:
            let other: Vec<Sym> = prog
                .enclosing_loops(a.stmt)
                .into_iter()
                .chain(prog.enclosing_loops(b.stmt))
                .filter(|&l| l != outer && l != inner)
                .filter_map(|l| loop_var(prog, l))
                .collect();
            for (src, dst) in [(a, b), (b, a)] {
                match test_pair(prog, src, dst, &levels, &other) {
                    PairResult::Independent => {}
                    PairResult::Dep(dirs) => {
                        if dirs[0].allows(Dir::Lt) && dirs[1].allows(Dir::Gt) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Is fusing adjacent conformable loops `(l1, l2)` legal?
///
/// Prevented iff some dependence from an `l1` access to an `l2` access could
/// be *backward* after fusion (destination iteration earlier than source),
/// i.e. the aligned direction allows `>` — this is the "fusion-prevented
/// dependence" the paper screens via region summaries (Figure 3).
pub fn fusion_legal(prog: &Program, l1: StmtId, l2: StmtId) -> bool {
    if !crate::loops::adjacent(prog, l1, l2) || !crate::loops::conformable(prog, l1, l2) {
        return false;
    }
    let v1 = loop_var(prog, l1).expect("conformable implies loops");
    let v2 = loop_var(prog, l2).expect("conformable implies loops");
    if has_reorder_hazard(prog, l1, &[v1]) || has_reorder_hazard(prog, l2, &[v2]) {
        return false;
    }
    fusion_dep_legal(prog, l1, l2)
}

/// The dependence-only part of the fusion check (assumes adjacency,
/// conformability and hazard checks already done). Exposed separately so the
/// PDG region-summary screen (Figure 3) can be compared against it.
pub fn fusion_dep_legal(prog: &Program, l1: StmtId, l2: StmtId) -> bool {
    let v1 = loop_var(prog, l1).expect("loop");
    let v2 = loop_var(prog, l2).expect("loop");
    let b1: Vec<StmtId> = loop_body(prog, l1).cloned().unwrap_or_default();
    let b2: Vec<StmtId> = loop_body(prog, l2).cloned().unwrap_or_default();
    let acc1 = collect_accesses(prog, &b1);
    let acc2 = collect_accesses(prog, &b2);
    let level = Level {
        var_src: v1,
        var_dst: v2,
        bounds: const_bounds(prog, l1),
    };
    for a in &acc1 {
        for b in &acc2 {
            if a.var != b.var || (!a.is_write && !b.is_write) {
                continue;
            }
            let other: Vec<Sym> = prog
                .enclosing_loops(a.stmt)
                .into_iter()
                .chain(prog.enclosing_loops(b.stmt))
                .filter(|&l| l != l1 && l != l2)
                .filter_map(|l| loop_var(prog, l))
                .collect();
            match test_pair(prog, a, b, std::slice::from_ref(&level), &other) {
                PairResult::Independent => {}
                PairResult::Dep(dirs) => {
                    if dirs[0].allows(Dir::Gt) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    #[test]
    fn ziv_independent() {
        let p = parse("do i = 1, 10\n  A(1) = A(2) + 1\nenddo\n").unwrap();
        let ddg = build_ddg(&p);
        // A(1) write vs A(2) read: independent — only the write-write pair
        // with itself could remain; check no flow dep on A.
        let a = p.symbols.get("A").unwrap();
        assert!(!ddg
            .deps
            .iter()
            .any(|d| d.var == a && d.kind == DepKind::Flow));
    }

    #[test]
    fn strong_siv_distance_one() {
        let p = parse("do i = 2, 9\n  A(i) = A(i - 1) + 1\nenddo\n").unwrap();
        let ddg = build_ddg(&p);
        let a = p.symbols.get("A").unwrap();
        let flow: Vec<_> = ddg
            .deps
            .iter()
            .filter(|d| d.var == a && d.kind == DepKind::Flow)
            .collect();
        assert_eq!(flow.len(), 1);
        assert_eq!(flow[0].dirs, vec![Dir::Lt]);
        assert!(flow[0].is_carried());
    }

    #[test]
    fn strong_siv_too_far_is_independent() {
        let p = parse("do i = 1, 5\n  A(i) = A(i - 100) + 1\nenddo\n").unwrap();
        let ddg = build_ddg(&p);
        let a = p.symbols.get("A").unwrap();
        assert!(!ddg
            .deps
            .iter()
            .any(|d| d.var == a && d.kind == DepKind::Flow));
    }

    #[test]
    fn gcd_independent() {
        // 2i vs 2i+1: parity differs, never equal.
        let p = parse("do i = 1, 10\n  A(2 * i) = A(2 * i + 1) + 1\nenddo\n").unwrap();
        let ddg = build_ddg(&p);
        let a = p.symbols.get("A").unwrap();
        assert!(!ddg
            .deps
            .iter()
            .any(|d| d.var == a && d.kind != DepKind::Output));
    }

    #[test]
    fn loop_independent_same_index() {
        let p = parse("do i = 1, 10\n  A(i) = 1\n  x = A(i)\n  write x\nenddo\n").unwrap();
        let ddg = build_ddg(&p);
        let a = p.symbols.get("A").unwrap();
        let flow: Vec<_> = ddg
            .deps
            .iter()
            .filter(|d| d.var == a && d.kind == DepKind::Flow)
            .collect();
        assert_eq!(flow.len(), 1);
        assert_eq!(flow[0].dirs, vec![Dir::Eq]);
        assert!(!flow[0].is_carried());
    }

    #[test]
    fn backward_textual_pair_flips_to_carried() {
        // Read of A(i+1) textually precedes the write A(i); the real flow
        // dependence is write(i) → read at i+1? No: write A(i) at iteration
        // k writes index k; read A(i+1) at iteration k reads k+1 — the read
        // at iteration k sees the value written at iteration k+1 only if the
        // write happens first, which it does not; so the dependence is
        // anti: read(k) before write(k+1), carried with direction <.
        let p = parse("do i = 1, 9\n  x = A(i + 1)\n  A(i) = x\n  write x\nenddo\n").unwrap();
        let ddg = build_ddg(&p);
        let a = p.symbols.get("A").unwrap();
        let deps: Vec<_> = ddg.deps.iter().filter(|d| d.var == a).collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Anti);
        assert_eq!(deps[0].dirs, vec![Dir::Lt]);
    }

    #[test]
    fn two_dim_directions() {
        // A(i, j) = A(i - 1, j + 1): flow dep with (<, >).
        let p =
            parse("do i = 2, 9\n  do j = 1, 8\n    A(i, j) = A(i - 1, j + 1)\n  enddo\nenddo\n")
                .unwrap();
        let ddg = build_ddg(&p);
        let a = p.symbols.get("A").unwrap();
        let flow: Vec<_> = ddg
            .deps
            .iter()
            .filter(|d| d.var == a && d.kind == DepKind::Flow)
            .collect();
        assert_eq!(flow.len(), 1);
        assert_eq!(flow[0].dirs, vec![Dir::Lt, Dir::Gt]);
    }

    #[test]
    fn interchange_blocked_by_lt_gt() {
        let p =
            parse("do i = 2, 9\n  do j = 1, 8\n    A(i, j) = A(i - 1, j + 1)\n  enddo\nenddo\n")
                .unwrap();
        let outer = p.body[0];
        let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
        assert!(!interchange_legal(&p, outer, inner));
    }

    #[test]
    fn interchange_allowed_without_cross_dep() {
        let p = parse("do i = 1, 10\n  do j = 1, 10\n    A(i, j) = B(i, j) + 1\n  enddo\nenddo\n")
            .unwrap();
        let outer = p.body[0];
        let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
        assert!(interchange_legal(&p, outer, inner));
    }

    #[test]
    fn interchange_allowed_with_all_eq_dep() {
        let p = parse("do i = 1, 10\n  do j = 1, 10\n    A(i, j) = A(i, j) + 1\n  enddo\nenddo\n")
            .unwrap();
        let outer = p.body[0];
        let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
        assert!(interchange_legal(&p, outer, inner));
    }

    #[test]
    fn interchange_blocked_by_scalar_def() {
        let p = parse(
            "do i = 1, 10\n  do j = 1, 10\n    t = B(i, j)\n    A(i, j) = t\n  enddo\nenddo\n",
        )
        .unwrap();
        let outer = p.body[0];
        let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
        assert!(!interchange_legal(&p, outer, inner));
    }

    #[test]
    fn interchange_blocked_for_non_rectangular() {
        let p = parse("do i = 1, 10\n  do j = 1, i\n    A(i, j) = 1\n  enddo\nenddo\n").unwrap();
        let outer = p.body[0];
        let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
        assert!(!interchange_legal(&p, outer, inner));
    }

    #[test]
    fn fusion_legal_independent_arrays() {
        let p =
            parse("do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = 2\nenddo\n").unwrap();
        assert!(fusion_legal(&p, p.body[0], p.body[1]));
    }

    #[test]
    fn fusion_legal_same_index_flow() {
        // A(i) produced then consumed at the same index: forward dep, legal.
        let p =
            parse("do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = A(i)\nenddo\n").unwrap();
        assert!(fusion_legal(&p, p.body[0], p.body[1]));
    }

    #[test]
    fn fusion_prevented_by_backward_dep() {
        // Second loop reads A(i+1), written by the first loop at a later
        // iteration after fusion: prevented.
        let p = parse("do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = A(i + 1)\nenddo\n")
            .unwrap();
        assert!(!fusion_legal(&p, p.body[0], p.body[1]));
    }

    #[test]
    fn fusion_requires_adjacency_and_conformability() {
        let p = parse(
            "do i = 1, 10\n  A(i) = 1\nenddo\nx = 0\ndo i = 1, 10\n  B(i) = 2\nenddo\ndo j = 1, 9\n  C(j) = 3\nenddo\n",
        )
        .unwrap();
        assert!(!fusion_legal(&p, p.body[0], p.body[2])); // not adjacent
        assert!(!fusion_legal(&p, p.body[2], p.body[3])); // not conformable
    }

    #[test]
    fn io_blocks_fusion() {
        let p = parse("do i = 1, 10\n  write i\nenddo\ndo i = 1, 10\n  A(i) = 1\nenddo\n").unwrap();
        assert!(!fusion_legal(&p, p.body[0], p.body[1]));
    }
}

#[cfg(test)]
mod oracle_tests {
    //! Oracle validation: for small constant-bound nests, enumerate the
    //! iteration space and check every verdict of the subscript tester
    //! against ground truth.

    use super::*;
    use pivot_lang::parser::parse;
    use proptest::prelude::*;

    /// Evaluate an affine subscript a*i + b*j + c at concrete (i, j).
    fn eval(a: i64, b: i64, c: i64, i: i64, j: i64) -> i64 {
        a * i + b * j + c
    }

    /// Ground truth for a 2-deep nest `do i = 1, n { do j = 1, m }` with a
    /// write `A(a1*i + b1*j + c1)` and a read `A(a2*i + b2*j + c2)`:
    /// the set of direction pairs (cmp(i, i'), cmp(j, j')) over all
    /// (write-iteration, read-iteration) pairs hitting the same address.
    #[allow(clippy::too_many_arguments)]
    fn truth(
        n: i64,
        m: i64,
        (a1, b1, c1): (i64, i64, i64),
        (a2, b2, c2): (i64, i64, i64),
    ) -> Vec<(std::cmp::Ordering, std::cmp::Ordering)> {
        let mut out = Vec::new();
        for i in 1..=n {
            for j in 1..=m {
                for i2 in 1..=n {
                    for j2 in 1..=m {
                        if eval(a1, b1, c1, i, j) == eval(a2, b2, c2, i2, j2) {
                            out.push((i.cmp(&i2), j.cmp(&j2)));
                        }
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn dir_allows(d: Dir, o: std::cmp::Ordering) -> bool {
        matches!(
            (d, o),
            (Dir::Star, _)
                | (Dir::Lt, std::cmp::Ordering::Less)
                | (Dir::Eq, std::cmp::Ordering::Equal)
                | (Dir::Gt, std::cmp::Ordering::Greater)
        )
    }

    fn sub_src(a: i64, b: i64, c: i64) -> String {
        format!("{a} * i + {b} * j + {c}")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn pair_test_is_sound_against_enumeration(
            a1 in -2i64..=2, b1 in -2i64..=2, c1 in -3i64..=3,
            a2 in -2i64..=2, b2 in -2i64..=2, c2 in -3i64..=3,
        ) {
            let (n, m) = (4i64, 3i64);
            let src = format!(
                "do i = 1, {n}\n  do j = 1, {m}\n    A({}) = A({}) + 1\n  enddo\nenddo\n",
                sub_src(a1, b1, c1),
                sub_src(a2, b2, c2),
            );
            let p = parse(&src).unwrap();
            let outer = p.body[0];
            let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
            let body = crate::loops::loop_body(&p, inner).cloned().unwrap();
            let accesses = collect_accesses(&p, &body);
            let write = accesses.iter().find(|a| a.is_write).unwrap();
            let read = accesses.iter().find(|a| !a.is_write).unwrap();
            let levels = [outer, inner].map(|l| Level {
                var_src: crate::loops::loop_var(&p, l).unwrap(),
                var_dst: crate::loops::loop_var(&p, l).unwrap(),
                bounds: crate::loops::const_bounds(&p, l),
            });
            let verdict = test_pair(&p, write, read, &levels, &[]);
            let ground = truth(n, m, (a1, b1, c1), (a2, b2, c2));
            match verdict {
                PairResult::Independent => {
                    prop_assert!(
                        ground.is_empty(),
                        "tester claims independence but {:?} conflict pairs exist \
                         for A({}) vs A({})",
                        ground.len(), sub_src(a1, b1, c1), sub_src(a2, b2, c2)
                    );
                }
                // Precision on the strong-SIV family: single-variable equal
                // coefficients must be decided exactly.
                PairResult::Dep(_)
                    if ground.is_empty()
                        && a1 == a2
                        && a1 != 0
                        && b1 == 0
                        && b2 == 0 =>
                {
                    prop_assert!(
                        false,
                        "strong SIV should prove independence for A({}) vs A({})",
                        sub_src(a1, b1, c1), sub_src(a2, b2, c2)
                    );
                }
                PairResult::Dep(dirs) => {
                    // Soundness: every real conflict must be covered by the
                    // direction constraint.
                    for (oi, oj) in &ground {
                        prop_assert!(
                            dir_allows(dirs[0], *oi) && dir_allows(dirs[1], *oj),
                            "conflict ({oi:?},{oj:?}) not covered by {:?} \
                             for A({}) vs A({})",
                            dirs, sub_src(a1, b1, c1), sub_src(a2, b2, c2)
                        );
                    }
                }
            }
        }

        #[test]
        fn interchange_legality_is_sound_against_enumeration(
            a1 in -1i64..=1, b1 in -1i64..=1, c1 in -2i64..=2,
            a2 in -1i64..=1, b2 in -1i64..=1, c2 in -2i64..=2,
        ) {
            // When the screen says an interchange is legal, interpreting the
            // original and interchanged nests must agree.
            let (n, m) = (4i64, 3i64);
            let src = format!(
                "do i = 1, {n}\n  do j = 1, {m}\n    A({li}) = A({ri}) + i + 10 * j\n  enddo\nenddo\nwrite A(0)\nwrite A(1)\nwrite A(2)\nwrite A(3)\nwrite A(-1)\nwrite A(-2)\nwrite A(5)\nwrite A(7)\n",
                li = sub_src(a1, b1, c1),
                ri = sub_src(a2, b2, c2),
            );
            let swapped = format!(
                "do j = 1, {m}\n  do i = 1, {n}\n    A({li}) = A({ri}) + i + 10 * j\n  enddo\nenddo\nwrite A(0)\nwrite A(1)\nwrite A(2)\nwrite A(3)\nwrite A(-1)\nwrite A(-2)\nwrite A(5)\nwrite A(7)\n",
                li = sub_src(a1, b1, c1),
                ri = sub_src(a2, b2, c2),
            );
            let p = parse(&src).unwrap();
            let outer = p.body[0];
            let inner = crate::loops::tightly_nested_inner(&p, outer).unwrap();
            if interchange_legal(&p, outer, inner) {
                let q = parse(&swapped).unwrap();
                let before = pivot_lang::interp::run_default(&p, &[]).unwrap();
                let after = pivot_lang::interp::run_default(&q, &[]).unwrap();
                prop_assert_eq!(
                    before, after,
                    "legal interchange changed semantics for A({}) = A({})",
                    sub_src(a1, b1, c1), sub_src(a2, b2, c2)
                );
            }
        }
    }
}

//! Dominators and postdominators.
//!
//! Iterative algorithm of Cooper, Harvey & Kennedy ("A Simple, Fast
//! Dominance Algorithm") over reverse postorder. Postdominators run the same
//! algorithm on the reversed graph from the exit. Postdominance is what the
//! PDG's control dependence construction consumes.

use crate::cfg::{BlockId, Cfg};

/// Dominator (or postdominator) tree.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each block; `idom[root] == root`; blocks
    /// unreachable from the root have `None`.
    pub idom: Vec<Option<BlockId>>,
    /// The root (entry for dominators, exit for postdominators).
    pub root: BlockId,
}

impl DomTree {
    /// Immediate dominator, if the block is reachable and not the root.
    pub fn parent(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(p) if p != b => Some(p),
            Some(_) => None, // root
            None => None,
        }
    }

    /// Does `a` dominate `b` (reflexively)?
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }

    /// Strict domination.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

fn intersect(idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_num[a] > rpo_num[b] {
            a = idom[a].expect("processed node has idom");
        }
        while rpo_num[b] > rpo_num[a] {
            b = idom[b].expect("processed node has idom");
        }
    }
    a
}

fn compute(
    n: usize,
    root: BlockId,
    order: &[BlockId],
    preds: impl Fn(BlockId) -> Vec<BlockId>,
) -> DomTree {
    // order = reverse postorder from root over the (possibly reversed) graph.
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_num[b.index()] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root.index()] = Some(root.index());
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let bi = b.index();
            let mut new_idom: Option<usize> = None;
            for p in preds(b) {
                let pi = p.index();
                if idom[pi].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => pi,
                    Some(cur) => intersect(&idom, &rpo_num, cur, pi),
                });
            }
            if let Some(ni) = new_idom {
                if idom[bi] != Some(ni) {
                    idom[bi] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    DomTree {
        idom: idom
            .into_iter()
            .map(|o| o.map(|i| BlockId(i as u32)))
            .collect(),
        root,
    }
}

/// Compute the dominator tree from the entry.
pub fn dominators(cfg: &Cfg) -> DomTree {
    let order = cfg.rpo();
    compute(cfg.len(), cfg.entry, &order, |b| cfg.block(b).preds.clone())
}

/// Compute the postdominator tree from the exit (dominators of the reverse
/// graph).
pub fn postdominators(cfg: &Cfg) -> DomTree {
    // Reverse postorder on the reversed graph = DFS from exit over preds.
    let n = cfg.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.exit, 0)];
    visited[cfg.exit.index()] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let preds = &cfg.block(b).preds;
        if *next < preds.len() {
            let p = preds[*next];
            *next += 1;
            if !visited[p.index()] {
                visited[p.index()] = true;
                stack.push((p, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    compute(n, cfg.exit, &post, |b| cfg.block(b).succs.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use pivot_lang::parser::parse;

    #[test]
    fn straight_line_chain() {
        let p = parse("a = 1\nb = 2\n").unwrap();
        let cfg = build(&p);
        let dom = dominators(&cfg);
        // entry dominates everything.
        for b in cfg.ids() {
            assert!(dom.dominates(cfg.entry, b));
        }
        let pdom = postdominators(&cfg);
        for b in cfg.ids() {
            assert!(pdom.dominates(cfg.exit, b));
        }
    }

    #[test]
    fn if_branches_not_dominating_join() {
        let p = parse("read x\nif (x > 0) then\n  y = 1\nelse\n  y = 2\nendif\nwrite y\n").unwrap();
        let cfg = build(&p);
        let dom = dominators(&cfg);
        let stmts = p.attached_stmts();
        let cond_b = cfg.block_of(stmts[1]).unwrap();
        let then_b = cfg.block_of(stmts[2]).unwrap();
        let else_b = cfg.block_of(stmts[3]).unwrap();
        let write_b = cfg.block_of(stmts[4]).unwrap();
        assert!(dom.dominates(cond_b, then_b));
        assert!(dom.dominates(cond_b, else_b));
        assert!(dom.dominates(cond_b, write_b));
        assert!(!dom.dominates(then_b, write_b));
        assert!(!dom.dominates(else_b, write_b));
        // Postdominance: the write block postdominates the branches.
        let pdom = postdominators(&cfg);
        assert!(pdom.dominates(write_b, then_b));
        assert!(pdom.dominates(write_b, cond_b));
        assert!(!pdom.dominates(then_b, cond_b));
    }

    #[test]
    fn loop_header_dominates_body_but_body_does_not_postdominate_header() {
        let p = parse("do i = 1, 5\n  x = i\nenddo\nwrite x\n").unwrap();
        let cfg = build(&p);
        let dom = dominators(&cfg);
        let pdom = postdominators(&cfg);
        let lp = p.body[0];
        let body_stmt = match &p.stmt(lp).kind {
            pivot_lang::StmtKind::DoLoop { body, .. } => body[0],
            _ => unreachable!(),
        };
        let hb = cfg.block_of(lp).unwrap();
        let bb = cfg.block_of(body_stmt).unwrap();
        assert!(dom.dominates(hb, bb));
        assert!(!dom.dominates(bb, hb));
        // The body does not postdominate the header (the loop may exit).
        assert!(!pdom.dominates(bb, hb));
        // The header postdominates the body (the latch returns to it).
        assert!(pdom.dominates(hb, bb));
    }

    #[test]
    fn idom_parent_chains_terminate() {
        let p = parse(
            "do i = 1, 3\n  if (i > 1) then\n    do j = 1, 2\n      x = j\n    enddo\n  endif\nenddo\n",
        )
        .unwrap();
        let cfg = build(&p);
        let dom = dominators(&cfg);
        for b in cfg.ids() {
            let mut cur = b;
            let mut hops = 0;
            while let Some(pn) = dom.parent(cur) {
                cur = pn;
                hops += 1;
                assert!(hops <= cfg.len(), "idom chain too long");
            }
            assert_eq!(cur, cfg.entry);
        }
    }
}

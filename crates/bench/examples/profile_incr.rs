//! Ad-hoc phase profile of batch rebuild vs incremental refresh.

use pivot_ir::{cfg, chains, dom, live, reaching, EditDelta, Rep};
use pivot_lang::{ExprKind, StmtKind};
use pivot_workload::{gen_program, WorkloadCfg};
use std::time::Instant;

fn time<T>(label: &str, n: u32, mut f: impl FnMut() -> T) {
    let start = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    println!(
        "{label:<28} {:>10.2} us",
        start.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}

fn main() {
    let mut prog = gen_program(
        11,
        &WorkloadCfg {
            fragments: 64,
            noise_ratio: 0.5,
            ..Default::default()
        },
    );
    let rep = Rep::build(&prog);
    let target = prog
        .attached_stmts()
        .into_iter()
        .find(|&s| matches!(prog.stmt(s).kind, StmtKind::Assign { .. }))
        .unwrap();
    let value = match &prog.stmt(target).kind {
        StmtKind::Assign { value, .. } => *value,
        _ => unreachable!(),
    };
    prog.replace_expr_kind(value, ExprKind::Const(7));
    let delta = EditDelta {
        touched: vec![target],
        ..Default::default()
    };

    let n = 200;
    println!("== batch layers ({} stmts) ==", prog.attached_len());
    let c = cfg::build(&prog);
    let rd = reaching::compute(&prog, &c);
    time("cfg::build", n, || cfg::build(&prog));
    time("dom+pdom", n, || {
        (dom::dominators(&c), dom::postdominators(&c))
    });
    time("reaching::compute", n, || reaching::compute(&prog, &c));
    time("live::compute", n, || live::compute(&prog, &c));
    time("chains::compute", n, || chains::compute(&prog, &c, &rd));
    time("def_sites", n, || reaching::def_sites(&prog));
    time("Rep::build", n, || Rep::build(&prog));
    time("rep.clone", n, || rep.clone());

    println!("== refresh paths ==");
    time("refresh (batch)", n, || {
        let mut r = rep.clone();
        r.refresh(&prog);
        r
    });
    time("try_refresh_delta", n, || {
        let mut r = rep.clone();
        r.try_refresh_delta(&prog, &delta).unwrap();
        r
    });

    println!("== fast-path pieces ==");
    use pivot_ir::bitset::BitSet;
    use pivot_ir::dataflow::{self, Direction, Meet, Problem};
    let dirty = vec![rep.cfg.block_of(target).unwrap()];
    time("def-invariance check", n, || {
        pivot_ir::access::stmt_def_use(&prog, target)
    });
    time("check_invariants", n, || prog.check_invariants());
    time("grow_and_redo", n, || {
        let mut l = rep.live.clone();
        l.grow_and_redo(&prog, &rep.cfg, &dirty);
        l
    });
    time("live resolve_dirty", n, || {
        let mut l = rep.live.clone();
        l.grow_and_redo(&prog, &rep.cfg, &dirty);
        let u = l.universe();
        let prob = Problem {
            direction: Direction::Backward,
            meet: Meet::Union,
            universe: u,
            gen: std::mem::take(&mut l.gen),
            kill: std::mem::take(&mut l.kill),
            boundary: BitSet::new(u),
        };
        dataflow::resolve_dirty(&rep.cfg, &prob, &mut l.sol, &dirty);
        l
    });
    time("live.clone", n, || rep.live.clone());
    time("chains::patch 1 block", n, || {
        let mut ch = rep.chains.clone();
        pivot_ir::chains::patch(&mut ch, &prog, &rep.cfg, &rep.reach, &dirty, &[]);
        ch
    });
    time("chains.clone", n, || rep.chains.clone());

    println!("== structural (detach) general path ==");
    let mut prog2 = gen_program(
        11,
        &WorkloadCfg {
            fragments: 64,
            noise_ratio: 0.5,
            ..Default::default()
        },
    );
    let rep2 = Rep::build(&prog2);
    let victim = rep2
        .cfg
        .blocks
        .iter()
        .filter(|b| b.stmts.len() >= 2)
        .flat_map(|b| b.stmts.iter().copied())
        .find(|&s| matches!(prog2.stmt(s).kind, StmtKind::Assign { .. }))
        .unwrap();
    prog2.detach(victim).unwrap();
    let delta2 = EditDelta {
        removed: vec![victim],
        ..Default::default()
    };
    time("rep2.clone", n, || rep2.clone());
    time("detach: batch refresh", n, || {
        let mut r = rep2.clone();
        r.try_refresh(&prog2).unwrap();
        r
    });
    time("detach: try_refresh_delta", n, || {
        let mut r = rep2.clone();
        r.try_refresh_delta(&prog2, &delta2).unwrap();
        r
    });
}

//! Shared helpers for the Criterion benches (kept minimal; the real content
//! lives in `benches/`).
#![warn(missing_docs)]

//! Shared helpers for the Criterion benches (the measurement content lives
//! in `benches/`).

#![warn(missing_docs)]

use pivot_obs::Phase;
use pivot_undo::engine::UndoReport;
use std::fmt::Write as _;

/// Render the per-phase wall-time breakdown of one undo request, with each
/// phase's share of the whole-request time. The benches print this once per
/// workload so the dominant phase (in practice `rep_rebuild`) is visible
/// next to the strategy comparison.
pub fn phase_breakdown(report: &UndoReport) -> String {
    let total = report.phase_ns.get(Phase::Undo);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "undo total: {total} ns, {} removed",
        report.undone.len()
    );
    for (phase, ns) in report.phase_ns.nonzero() {
        if phase == Phase::Undo {
            continue;
        }
        let pct = if total == 0 {
            0.0
        } else {
            ns as f64 * 100.0 / total as f64
        };
        let _ = writeln!(out, "  {:<20} {ns:>10} ns ({pct:>4.1}%)", phase.name());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_undo::engine::{Session, Strategy};
    use pivot_undo::XformKind;

    #[test]
    fn breakdown_lists_phases_with_shares() {
        let mut s = Session::from_source("d = e + f\nr = e + f\nwrite r\nwrite d\n").unwrap();
        let cse = s.apply_kind(XformKind::Cse).unwrap();
        let report = s.undo(cse, Strategy::Regional).unwrap();
        let text = phase_breakdown(&report);
        assert!(text.starts_with("undo total:"), "{text}");
        assert!(text.contains("rep_rebuild"), "{text}");
        assert!(text.contains("inverse_action"), "{text}");
        assert!(text.contains('%'), "{text}");
    }
}

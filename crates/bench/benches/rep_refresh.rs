//! Batch vs. incremental representation refresh (E13).
//!
//! The `Dependence_and_data_flow_update` of Figure 4 is the dominant cost
//! of every undo (E8/E11). This bench measures what the delta-driven
//! incremental path (`Rep::try_refresh_delta`) saves over the batch
//! rebuild (`Rep::refresh`) for the paper's common case: a localized
//! change — a single statement's RHS rewritten — and a cascade touching
//! several statements, across small/medium/large workload programs.
//!
//! Each iteration starts from a clone of the *pre-edit* representation
//! (setup, untimed) and refreshes it against the post-edit program, so the
//! incremental path pays its full cost: CFG rebuild + shape check, fact
//! remapping, dirty seeding, frontier-restarted solves and chain patching.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pivot_ir::{incr, EditDelta, RefreshOutcome, Rep};
use pivot_lang::{ExprKind, Program, StmtId, StmtKind};
use pivot_workload::{gen_program, WorkloadCfg};

/// Attached assignment statements, in program order.
fn assigns(p: &Program) -> Vec<StmtId> {
    p.attached_stmts()
        .into_iter()
        .filter(|&s| matches!(p.stmt(s).kind, StmtKind::Assign { .. }))
        .collect()
}

/// Rewrite the RHS of `stmt` to a fresh constant, returning it as the
/// touched statement of the resulting delta.
fn rewrite_rhs(p: &mut Program, stmt: StmtId, c: i64) {
    let value = match &p.stmt(stmt).kind {
        StmtKind::Assign { value, .. } => *value,
        other => panic!("expected Assign, got {other:?}"),
    };
    p.replace_expr_kind(value, ExprKind::Const(c));
}

/// One benched scenario: the pre-edit rep, the post-edit program, and the
/// delta linking them.
struct Scenario {
    rep: Rep,
    prog: Program,
    delta: EditDelta,
    stmts: usize,
}

/// The edit the scenario applies between the two representation states.
#[derive(Clone, Copy)]
enum Shape {
    /// Rewrite the RHS of this many statements in place (fast path).
    Touch(usize),
    /// Detach one assignment (structural delta: remapping + cone restart).
    Detach,
}

fn scenario(fragments: usize, shape: Shape) -> Scenario {
    let mut prog = gen_program(
        11,
        &WorkloadCfg {
            fragments,
            noise_ratio: 0.5,
            ..Default::default()
        },
    );
    let rep = Rep::build(&prog);
    let targets = assigns(&prog);
    let delta = match shape {
        Shape::Touch(touch) => {
            assert!(
                targets.len() >= touch,
                "workload too small for {touch} edits"
            );
            // Spread the touched statements across the program so a cascade
            // is not one dirty block by accident.
            let stride = targets.len() / touch;
            let touched: Vec<StmtId> = (0..touch).map(|i| targets[i * stride]).collect();
            for (i, &s) in touched.iter().enumerate() {
                rewrite_rhs(&mut prog, s, 7 + i as i64);
            }
            EditDelta {
                touched,
                ..Default::default()
            }
        }
        Shape::Detach => {
            // Detach an assignment that shares its basic block with other
            // plain statements, so the CFG keeps its shape and the general
            // incremental path (fact remapping + cone restart) is measured
            // rather than the fallback.
            let victim = rep
                .cfg
                .blocks
                .iter()
                .filter(|b| b.stmts.len() >= 2)
                .flat_map(|b| b.stmts.iter().copied())
                .find(|&s| matches!(prog.stmt(s).kind, StmtKind::Assign { .. }))
                .expect("no multi-statement block with an assignment");
            prog.detach(victim).unwrap();
            EditDelta {
                removed: vec![victim],
                ..Default::default()
            }
        }
    };
    let stmts = prog.attached_len();

    // The scenario must actually exercise the incremental path, and the
    // updated rep must conform to a batch rebuild — otherwise the numbers
    // below compare nothing.
    let mut probe = rep.clone();
    match probe.try_refresh_delta(&prog, &delta).unwrap() {
        RefreshOutcome::Incremental(_) => {}
        RefreshOutcome::Fallback(r) => panic!("scenario fell back: {}", r.name()),
    }
    incr::check_against_batch(&probe, &prog);

    Scenario {
        rep,
        prog,
        delta,
        stmts,
    }
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("rep_refresh");
    g.sample_size(30);
    for (label, fragments) in [("small", 4usize), ("medium", 16), ("large", 64)] {
        for (shape_name, shape) in [
            ("single", Shape::Touch(1)),
            ("cascade", Shape::Touch(5)),
            ("structural", Shape::Detach),
        ] {
            let s = scenario(fragments, shape);
            let id = format!("{label}_{}stmts/{shape_name}", s.stmts);
            // `try_refresh` is the engine's Batch-mode path; like
            // `try_refresh_delta` it validates program invariants first,
            // so the two arms measure the same engine-level operation.
            g.bench_function(BenchmarkId::new("batch", &id), |b| {
                b.iter_batched(
                    || s.rep.clone(),
                    |mut r| {
                        r.try_refresh(&s.prog).unwrap();
                        r
                    },
                    BatchSize::LargeInput,
                )
            });
            g.bench_function(BenchmarkId::new("incremental", &id), |b| {
                b.iter_batched(
                    || s.rep.clone(),
                    |mut r| {
                        r.try_refresh_delta(&s.prog, &s.delta).unwrap();
                        r
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_refresh
}
criterion_main!(benches);

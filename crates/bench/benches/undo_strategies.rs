//! Experiments E7/E8 (Figure 4 + the study the paper defers): wall-clock
//! cost of undoing one mid-sequence transformation under each strategy,
//! versus the reverse-order baseline (with and without redo), sweeping the
//! number of applied transformations.
//!
//! Expected shape (recorded in EXPERIMENTS.md): Regional ≈ NoHeuristic ≪
//! FullScan as unrelated transformations grow; reverse+redo pays the full
//! re-derivation bill.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pivot_obs::Recorder;
use pivot_undo::engine::Strategy;
use pivot_workload::{prepare, Prepared, WorkloadCfg};
use std::sync::Arc;

fn setup(frags: usize) -> (WorkloadCfg, u64) {
    (
        WorkloadCfg {
            fragments: frags,
            noise_ratio: 0.3,
            ..Default::default()
        },
        0xBEEF ^ frags as u64,
    )
}

fn bench_undo(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo_one_midsequence");
    g.sample_size(10);
    for frags in [8usize, 16, 32] {
        let (cfg, seed) = setup(frags);
        let probe: Prepared = prepare(seed, &cfg, frags * 2);
        let n = probe.applied.len();
        assert!(n >= 4, "workload too small");
        let target = probe.applied[n / 4];

        for strategy in [
            Strategy::Regional,
            Strategy::NoHeuristic,
            Strategy::FullScan,
        ] {
            g.bench_with_input(BenchmarkId::new(format!("{strategy:?}"), n), &n, |b, _| {
                b.iter_batched(
                    || prepare(seed, &cfg, frags * 2),
                    |mut p| p.session.undo(target, strategy).expect("undo").undone.len(),
                    BatchSize::PerIteration,
                )
            });
        }
        g.bench_with_input(BenchmarkId::new("ReverseOrder", n), &n, |b, _| {
            b.iter_batched(
                || prepare(seed, &cfg, frags * 2),
                |mut p| {
                    p.session
                        .undo_reverse_to(target)
                        .expect("undo")
                        .undone
                        .len()
                },
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("ReversePlusRedo", n), &n, |b, _| {
            b.iter_batched(
                || prepare(seed, &cfg, frags * 2),
                |mut p| p.session.undo_reverse_redo(target).expect("undo").1,
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();

    // Undo of the LAST transformation (the immediate case shared with
    // reverse-order undo; the paper's in-order scheme [5]).
    let mut g = c.benchmark_group("undo_last");
    g.sample_size(10);
    let (cfg, seed) = setup(16);
    let probe = prepare(seed, &cfg, 32);
    let last = *probe.applied.last().unwrap();
    g.bench_function("independent", |b| {
        b.iter_batched(
            || prepare(seed, &cfg, 32),
            |mut p| {
                p.session
                    .undo(last, Strategy::Regional)
                    .expect("undo")
                    .undone
                    .len()
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("reverse", |b| {
        b.iter_batched(
            || prepare(seed, &cfg, 32),
            |mut p| p.session.undo_reverse_to(last).expect("undo").undone.len(),
            BatchSize::PerIteration,
        )
    });
    g.finish();

    // Observability cost: the same mid-sequence undo with the default
    // (disabled) tracer versus a JSONL recorder draining into a sink.
    // Acceptance: the disabled path stays within noise (<5%) of the seed —
    // it only adds one relaxed `enabled()` check per phase.
    let mut g = c.benchmark_group("tracer_overhead");
    g.sample_size(20);
    let (cfg, seed) = setup(16);
    let probe = prepare(seed, &cfg, 32);
    let target = probe.applied[probe.applied.len() / 4];
    g.bench_function("disabled", |b| {
        b.iter_batched(
            || prepare(seed, &cfg, 32),
            |mut p| {
                p.session
                    .undo(target, Strategy::Regional)
                    .expect("undo")
                    .undone
                    .len()
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("recorder", |b| {
        b.iter_batched(
            || {
                let mut p = prepare(seed, &cfg, 32);
                p.session
                    .set_tracer(Arc::new(Recorder::new(std::io::sink())));
                p
            },
            |mut p| {
                p.session
                    .undo(target, Strategy::Regional)
                    .expect("undo")
                    .undone
                    .len()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();

    // One representative phase breakdown next to the numbers above.
    let mut p = prepare(seed, &cfg, 32);
    let report = p.session.undo(target, Strategy::Regional).expect("undo");
    eprintln!(
        "phase breakdown (Regional, 16 fragments):\n{}",
        pivot_bench::phase_breakdown(&report)
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_undo
}
criterion_main!(benches);

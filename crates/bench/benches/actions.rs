//! Experiment E1 (Table 1): cost of each primitive action and its inverse.
//!
//! The paper's claim is architectural — reversal via inverse actions is
//! *immediate* (no re-analysis). These benches put numbers on "immediate":
//! each action+inverse pair is a few structural operations, microseconds,
//! versus the milliseconds of a representation rebuild (see `analyses`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pivot_lang::parser::parse;
use pivot_lang::{ExprKind, Loc};
use pivot_undo::ActionLog;
use pivot_workload::{gen_program, WorkloadCfg};

fn medium_program() -> pivot_lang::Program {
    gen_program(
        11,
        &WorkloadCfg {
            fragments: 16,
            noise_ratio: 0.5,
            ..Default::default()
        },
    )
}

fn bench_actions(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_actions");

    g.bench_function("delete_plus_inverse", |b| {
        let p = medium_program();
        let target = p.body[p.body.len() / 2];
        b.iter_batched(
            || (p.clone(), ActionLog::new()),
            |(mut p, mut log)| {
                log.delete(&mut p, target).unwrap();
                let k = log.actions.pop().unwrap().kind;
                ActionLog::apply_inverse(&mut p, &k).unwrap();
                p
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("move_plus_inverse", |b| {
        let p = medium_program();
        let target = p.body[p.body.len() / 2];
        b.iter_batched(
            || (p.clone(), ActionLog::new()),
            |(mut p, mut log)| {
                log.move_stmt(&mut p, target, Loc::root_start()).unwrap();
                let k = log.actions.pop().unwrap().kind;
                ActionLog::apply_inverse(&mut p, &k).unwrap();
                p
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("copy_plus_inverse", |b| {
        let p = medium_program();
        let target = p.body[p.body.len() / 2];
        b.iter_batched(
            || (p.clone(), ActionLog::new()),
            |(mut p, mut log)| {
                let loc = p.loc_of(target).unwrap();
                log.copy(&mut p, target, loc).unwrap();
                let k = log.actions.pop().unwrap().kind;
                ActionLog::apply_inverse(&mut p, &k).unwrap();
                p
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("modify_plus_inverse", |b| {
        let p = parse("x = a + b * c - d\n").unwrap();
        let e = p.stmt_expr_roots(p.body[0])[0];
        b.iter_batched(
            || (p.clone(), ActionLog::new()),
            |(mut p, mut log)| {
                log.modify_expr(&mut p, e, ExprKind::Const(1)).unwrap();
                let k = log.actions.pop().unwrap().kind;
                ActionLog::apply_inverse(&mut p, &k).unwrap();
                p
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();

    // History bookkeeping: annotation table construction (Figure 2).
    let mut g = c.benchmark_group("table2_history");
    g.bench_function("annotation_table_64_actions", |b| {
        let mut p = medium_program();
        let mut log = ActionLog::new();
        let stmts = p.body.clone();
        for (i, &s) in stmts.iter().enumerate().take(64) {
            if i % 2 == 0 {
                let _ = log.delete(&mut p, s);
            } else {
                let _ = log.move_stmt(&mut p, s, Loc::root_start());
            }
        }
        b.iter(|| log.annotations());
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_actions
}
criterion_main!(benches);

//! Substrate benches: two-level representation construction and its layers
//! (CFG, dataflow, dependence testing, PDG) across program sizes. This is
//! the `Dependence_and_data_flow_update` cost (Figure 4, line 13) that the
//! undo engine pays once per removal — and that the reverse-order baseline
//! pays once per *collaterally removed* transformation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivot_ir::{avail, cfg, chains, dag, depend, dom, live, reaching, Rep};
use pivot_workload::{gen_program, WorkloadCfg};

fn bench_layers(c: &mut Criterion) {
    let mut g = c.benchmark_group("rep_layers");
    let p = gen_program(
        3,
        &WorkloadCfg {
            fragments: 16,
            noise_ratio: 0.5,
            ..Default::default()
        },
    );
    let built_cfg = cfg::build(&p);
    let rd = reaching::compute(&p, &built_cfg);

    g.bench_function("cfg", |b| b.iter(|| cfg::build(&p)));
    g.bench_function("dominators", |b| b.iter(|| dom::dominators(&built_cfg)));
    g.bench_function("postdominators", |b| {
        b.iter(|| dom::postdominators(&built_cfg))
    });
    g.bench_function("reaching_defs", |b| {
        b.iter(|| reaching::compute(&p, &built_cfg))
    });
    g.bench_function("liveness", |b| b.iter(|| live::compute(&p, &built_cfg)));
    g.bench_function("avail_exprs", |b| b.iter(|| avail::compute(&p, &built_cfg)));
    g.bench_function("du_chains", |b| {
        b.iter(|| chains::compute(&p, &built_cfg, &rd))
    });
    g.bench_function("ddg", |b| b.iter(|| depend::build_ddg(&p)));
    g.bench_function("block_dags", |b| {
        b.iter(|| {
            built_cfg
                .ids()
                .map(|blk| dag::build(&p, &built_cfg.block(blk).stmts).nodes.len())
                .sum::<usize>()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("rep_build_scaling");
    g.sample_size(20);
    for frags in [4usize, 8, 16, 32, 64] {
        let p = gen_program(
            5,
            &WorkloadCfg {
                fragments: frags,
                noise_ratio: 0.5,
                ..Default::default()
            },
        );
        let stmts = p.attached_len();
        g.bench_with_input(BenchmarkId::new("full_rep", stmts), &p, |b, p| {
            b.iter(|| Rep::build(p))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_layers
}
criterion_main!(benches);

//! Transactional-undo overhead: what the checkpoint/rollback machinery and
//! the write-ahead journal cost on the standard mid-sequence undo.
//!
//! Expected shape (recorded in EXPERIMENTS.md): the checkpoint is a
//! copy-on-write capture of the four session structures — chunk-table
//! copies plus refcount bumps, effectively O(1) in program size — so
//! `undo` with no journal stays within noise of the pre-transactional
//! engine; attaching a journal adds two synced line writes per request
//! and dominates on fast undos. The `checkpoint` entries time take +
//! release on a live session (the per-request cost); the size ladder
//! (16/64/256 fragments) pins the flat-in-program-size claim, and
//! `pivot-workload cowcheck` gates the speedup against the eager
//! deep-copy baseline in CI.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pivot_undo::engine::Strategy;
use pivot_undo::Journal;
use pivot_workload::{prepare, WorkloadCfg};

fn setup(frags: usize) -> (WorkloadCfg, u64) {
    (
        WorkloadCfg {
            fragments: frags,
            noise_ratio: 0.3,
            ..Default::default()
        },
        0xBEEF ^ frags as u64,
    )
}

fn bench_txn(c: &mut Criterion) {
    let (cfg, seed) = setup(16);
    let probe = prepare(seed, &cfg, 32);
    let target = probe.applied[probe.applied.len() / 4];

    let mut g = c.benchmark_group("txn_overhead");
    g.sample_size(20);

    // Raw snapshot cost: what every apply/undo request pays up front.
    // Timed on a live session so only take + release is measured (the old
    // iter_batched form also timed tearing down the whole prepared
    // session, swamping the number it existed to track).
    g.bench_function("checkpoint", |b| b.iter(|| probe.session.checkpoint()));

    // Same capture across a size ladder: copy-on-write checkpoints must
    // stay flat as the program grows.
    for frags in [64usize, 256] {
        let (lcfg, lseed) = setup(frags);
        let large = prepare(lseed, &lcfg, 32);
        g.bench_function(BenchmarkId::new("checkpoint", frags), |b| {
            b.iter(|| large.session.checkpoint())
        });
    }

    // Mid-sequence undo with the checkpoint/rollback machinery but no
    // journal — the default configuration.
    g.bench_function("undo_no_journal", |b| {
        b.iter_batched(
            || prepare(seed, &cfg, 32),
            |mut p| {
                p.session
                    .undo(target, Strategy::Regional)
                    .expect("undo")
                    .undone
                    .len()
            },
            BatchSize::PerIteration,
        )
    });

    // The same undo with a write-ahead journal attached (begin + commit,
    // each flushed and synced).
    let path = std::env::temp_dir().join("pivot_bench_txn.journal");
    let _ = std::fs::remove_file(&path);
    g.bench_function("undo_journal", |b| {
        b.iter_batched(
            || {
                let mut p = prepare(seed, &cfg, 32);
                p.session
                    .set_journal(Journal::open(&path).expect("journal"));
                p
            },
            |mut p| {
                p.session
                    .undo(target, Strategy::Regional)
                    .expect("undo")
                    .undone
                    .len()
            },
            BatchSize::PerIteration,
        )
    });
    let _ = std::fs::remove_file(&path);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_txn
}
criterion_main!(benches);

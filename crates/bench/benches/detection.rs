//! Experiment E3 (Table 3): cost of the safety and reversibility condition
//! checks — the per-candidate work whose *count* the regional strategy and
//! the interaction heuristic minimize. Also benches opportunity detection
//! per transformation kind.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_undo::revers::check_reversible;
use pivot_undo::safety::still_safe;
use pivot_undo::{catalog, ALL_KINDS};
use pivot_workload::{prepare, WorkloadCfg};

fn bench_detection(c: &mut Criterion) {
    let cfg = WorkloadCfg {
        fragments: 16,
        noise_ratio: 0.5,
        ..Default::default()
    };
    let prepared = prepare(21, &cfg, 24);
    let s = &prepared.session;
    assert!(prepared.applied.len() >= 12);

    let mut g = c.benchmark_group("table3_conditions");
    g.bench_function("safety_check_one", |b| {
        let record = s.history.get(prepared.applied[2]).unwrap().clone();
        b.iter(|| still_safe(&s.prog, &s.rep, &s.log, &record))
    });
    g.bench_function("safety_check_all_applied", |b| {
        b.iter(|| {
            s.history
                .active()
                .filter(|r| still_safe(&s.prog, &s.rep, &s.log, r))
                .count()
        })
    });
    g.bench_function("reversibility_check_one", |b| {
        let record = s.history.get(prepared.applied[2]).unwrap().clone();
        b.iter(|| check_reversible(&s.prog, &s.log, &s.history, &record).is_ok())
    });
    g.finish();

    let mut g = c.benchmark_group("opportunity_detection");
    let fresh = pivot_workload::gen_program(21, &cfg);
    let rep = pivot_ir::Rep::build(&fresh);
    for kind in ALL_KINDS {
        g.bench_function(kind.abbrev(), |b| {
            b.iter(|| catalog::find(&fresh, &rep, kind).len())
        });
    }
    g.bench_function("all_kinds", |b| {
        b.iter(|| catalog::find_all(&fresh, &rep).len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_detection
}
criterion_main!(benches);

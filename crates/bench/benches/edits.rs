//! Experiment E9: edit-driven invalidation — selective removal of unsafe
//! transformations versus reverting everything and re-deriving (the
//! "redoing all transformations in response to program edits" the paper's
//! introduction argues against).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use pivot_undo::engine::Strategy;
use pivot_workload::{gen_edit, prepare, WorkloadCfg};

fn bench_edits(c: &mut Criterion) {
    let mut g = c.benchmark_group("edit_invalidation");
    g.sample_size(10);
    for frags in [8usize, 16, 32] {
        let cfg = WorkloadCfg {
            fragments: frags,
            noise_ratio: 0.3,
            ..Default::default()
        };
        let seed = 0xED17 ^ frags as u64;
        let edited = || {
            let mut p = prepare(seed, &cfg, frags * 2);
            let edit = gen_edit(&p.session, 5);
            p.session.edit(&edit).expect("edit applies");
            p
        };
        let n = edited().session.history.active_len();

        g.bench_with_input(BenchmarkId::new("find_unsafe", n), &n, |b, _| {
            b.iter_batched(
                edited,
                |p| p.session.find_unsafe().len(),
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("selective_removal", n), &n, |b, _| {
            b.iter_batched(
                edited,
                |mut p| p.session.remove_unsafe(Strategy::Regional).removed.len(),
                BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("revert_all_and_redo", n), &n, |b, _| {
            b.iter_batched(
                edited,
                |mut p| p.session.revert_all_and_redo().1,
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_edits
}
criterion_main!(benches);

//! Experiment E6 (Figure 3): dependence summaries on region nodes.
//!
//! The paper's claim: with each data dependence annotated on the least
//! common region node of its source and sink, legality questions like "can
//! these two loops fuse?" are answered from the inter-region dependences on
//! one region node, "without visiting all nodes under the two loops". The
//! bench compares the summary-screened check against the full pairwise
//! access test, sweeping loop body size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivot_ir::depend::{build_ddg, fusion_dep_legal};
use pivot_ir::pdg::Pdg;
use pivot_lang::builder::{add, c, ix, v, ProgramBuilder};
use pivot_lang::Program;

/// Two adjacent conformable loops with `n` independent statements each and
/// a single cross-loop dependence (the paper's d2).
fn two_loops(n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.do_loop("i", c(1), c(50), |b| {
        for k in 0..n {
            b.assign_ix(&format!("A{k}"), vec![v("i")], add(v("i"), c(k as i64)));
        }
        b.assign_ix("X", vec![v("i")], v("i"));
    });
    b.do_loop("i", c(1), c(50), |b| {
        for k in 0..n {
            b.assign_ix(&format!("B{k}"), vec![v("i")], add(v("i"), c(k as i64)));
        }
        b.assign_ix("Y", vec![v("i")], ix("X", vec![v("i")]));
    });
    b.write(ix("Y", vec![c(1)]));
    b.finish()
}

fn bench_summaries(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure3_fusion_screen");
    for n in [4usize, 16, 64, 128] {
        let p = two_loops(n);
        let (l1, l2) = (p.body[0], p.body[1]);
        let ddg = build_ddg(&p);
        let pdg = Pdg::build(&p, &ddg);
        // Sanity: both paths agree (also asserted in unit tests).
        assert_eq!(
            pdg.fusion_screen(&p, &ddg, l1, l2),
            fusion_dep_legal(&p, l1, l2)
        );
        g.bench_with_input(BenchmarkId::new("summary_screen", n), &n, |b, _| {
            b.iter(|| pdg.fusion_screen(&p, &ddg, l1, l2))
        });
        g.bench_with_input(BenchmarkId::new("full_pairwise", n), &n, |b, _| {
            b.iter(|| fusion_dep_legal(&p, l1, l2))
        });
    }
    g.finish();

    // Summary construction cost (amortized across many queries in practice).
    let mut g = c.benchmark_group("figure3_summary_build");
    for n in [16usize, 64] {
        let p = two_loops(n);
        let ddg = build_ddg(&p);
        g.bench_with_input(BenchmarkId::new("pdg_with_summaries", n), &n, |b, _| {
            b.iter(|| Pdg::build(&p, &ddg).len())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_summaries
}
criterion_main!(benches);

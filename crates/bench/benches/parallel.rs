//! Experiment E10 (ablation beyond the paper): parallel vs sequential
//! screening of candidate transformations' safety — the independent
//! per-candidate checks fan out over crossbeam scoped threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivot_undo::parcheck::{screen_parallel, screen_sequential};
use pivot_workload::{prepare, WorkloadCfg};

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_safety_screen");
    g.sample_size(20);
    for frags in [16usize, 48] {
        let cfg = WorkloadCfg {
            fragments: frags,
            noise_ratio: 0.2,
            ..Default::default()
        };
        let prepared = prepare(0xFA2 ^ frags as u64, &cfg, frags * 2);
        let s = &prepared.session;
        let records: Vec<&pivot_undo::AppliedXform> = s.history.active().collect();
        let n = records.len();
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| screen_sequential(&s.prog, &s.rep, &s.log, &records))
        });
        for threads in [2usize, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("parallel_{threads}"), n),
                &n,
                |b, _| b.iter(|| screen_parallel(&s.prog, &s.rep, &s.log, &records, threads)),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_parallel
}
criterion_main!(benches);

//! Experiments E10/E14: parallel vs sequential kernels. The independent
//! per-candidate safety checks, the whole-catalog opportunity scan, and
//! batch undo planning fan out over the `pivot-par` work-stealing pool;
//! the 1-thread arm routes through the literally unchanged sequential
//! code (`Pool::is_sequential` gate), so each group measures parallel
//! overhead/speedup against the true oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivot_undo::parcheck::{screen_parallel, screen_sequential};
use pivot_undo::Pool;
use pivot_workload::{prepare, WorkloadCfg};

fn bench_screen(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_safety_screen");
    g.sample_size(20);
    for frags in [16usize, 48] {
        let cfg = WorkloadCfg {
            fragments: frags,
            noise_ratio: 0.2,
            ..Default::default()
        };
        let prepared = prepare(0xFA2 ^ frags as u64, &cfg, frags * 2);
        let s = &prepared.session;
        let records: Vec<&pivot_undo::AppliedXform> = s.history.active().collect();
        let n = records.len();
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| screen_sequential(&s.prog, &s.rep, &s.log, &records))
        });
        for threads in [2usize, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("parallel_{threads}"), n),
                &n,
                |b, _| b.iter(|| screen_parallel(&s.prog, &s.rep, &s.log, &records, threads)),
            );
        }
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_opportunity_scan");
    g.sample_size(20);
    let cfg = WorkloadCfg {
        fragments: 48,
        noise_ratio: 0.2,
        ..Default::default()
    };
    let prepared = prepare(0xE14, &cfg, 96);
    let s = &prepared.session;
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| pivot_undo::catalog::find_all_with(&s.prog, &s.rep, &pool))
        });
    }
    g.finish();
}

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_batch_plan");
    g.sample_size(20);
    let cfg = WorkloadCfg {
        fragments: 48,
        noise_ratio: 0.2,
        ..Default::default()
    };
    let prepared = prepare(0xE14 ^ 1, &cfg, 96);
    let targets = prepared.applied.clone();
    for threads in [1usize, 2, 4, 8] {
        let mut fork = prepared.session.fork();
        fork.set_pool(Pool::new(threads));
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| fork.plan_undo(&targets))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_screen, bench_scan, bench_plan
}
criterion_main!(benches);

//! # pivot-par
//!
//! Scoped work-stealing thread pool for the PIVOT engine's
//! embarrassingly-parallel kernels: safety-predicate screens, opportunity
//! detection, per-block dataflow rounds, and batch undo planning.
//!
//! The design constraint is **determinism**: every fan-out returns results
//! positionally (task `i`'s result lands at index `i`), so callers merge in
//! a stable order and a parallel run is bit-identical to the sequential
//! one. Scheduling only decides *when* a task runs, never what any task
//! computes or where its result goes — see `DESIGN.md` §11 for the full
//! argument.
//!
//! A [`Pool`] with one thread ([`Pool::is_sequential`]) runs every task
//! inline on the caller's thread, byte-for-byte the pre-parallel code path;
//! it is the oracle the differential suite compares against. Thread count
//! comes from the `PIVOT_THREADS` environment variable (via
//! [`Pool::from_env`]) or an explicit [`Pool::new`].
//!
//! For interleaving stress tests, a seeded [`SchedScript`] injects
//! per-task yield points ([`Pool::with_script`], `PIVOT_SCHED_SEED`),
//! perturbing the schedule without touching any result.

#![warn(missing_docs)]

pub mod pool;
pub mod sched;

pub use pool::Pool;
pub use sched::SchedScript;

/// Resolve a thread count: an explicit request wins, then the
/// `PIVOT_THREADS` environment variable, then `1` (the sequential oracle
/// path — parallelism is opt-in). A requested or configured `0` means "use
/// the machine": [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    let configured = requested.or_else(|| {
        std::env::var("PIVOT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    });
    match configured {
        Some(0) => machine_threads(),
        Some(n) => n,
        None => 1,
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_explicit_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(1)), 1);
    }

    #[test]
    fn resolve_zero_means_machine() {
        assert_eq!(resolve_threads(Some(0)), machine_threads());
        assert!(machine_threads() >= 1);
    }
}

//! Scripted scheduler perturbation for interleaving stress tests.
//!
//! A [`SchedScript`] derives, from a seed and a task index, a small number
//! of `yield_now` calls (and an occasional micro-sleep) injected before
//! the task body runs. Sweeping seeds explores different worker
//! interleavings — steal patterns, queue drain orders, completion orders —
//! while the pool's positional result contract guarantees the *output*
//! cannot change. The `parcheck` sweep (`pivot-workload parcheck`) runs
//! the same workload across seeds × thread counts and asserts exactly
//! that.

/// Seeded per-task schedule perturbation (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedScript {
    seed: u64,
}

impl SchedScript {
    /// A script derived from `seed`.
    pub fn new(seed: u64) -> SchedScript {
        SchedScript { seed }
    }

    /// Script from the `PIVOT_SCHED_SEED` environment variable, if set.
    pub fn from_env() -> Option<SchedScript> {
        std::env::var("PIVOT_SCHED_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(SchedScript::new)
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// SplitMix64 over (seed, task): a well-distributed per-task hash.
    fn mix(&self, task: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(task as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Number of `yield_now` calls injected before task `task` (0..=7).
    pub fn yields(&self, task: usize) -> u32 {
        (self.mix(task) & 0x7) as u32
    }

    /// Perturb the schedule at the start of `task`: the scripted yields,
    /// plus a sub-20µs sleep on roughly one task in eight (enough to shift
    /// steal patterns without slowing a sweep down).
    pub fn perturb(&self, task: usize) {
        let h = self.mix(task);
        for _ in 0..(h & 0x7) {
            std::thread::yield_now();
        }
        if (h >> 3) & 0x7 == 0 {
            std::thread::sleep(std::time::Duration::from_micros((h >> 6) % 20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = SchedScript::new(42);
        let b = SchedScript::new(42);
        for t in 0..64 {
            assert_eq!(a.yields(t), b.yields(t));
        }
    }

    #[test]
    fn seeds_disagree_somewhere() {
        let a = SchedScript::new(1);
        let b = SchedScript::new(2);
        assert!((0..64).any(|t| a.yields(t) != b.yields(t)));
    }

    #[test]
    fn yields_are_bounded() {
        let s = SchedScript::new(7);
        for t in 0..256 {
            assert!(s.yields(t) <= 7);
            s.perturb(t); // must terminate quickly
        }
    }
}

//! The scoped work-stealing pool.
//!
//! [`Pool::run`] fans `n` index-tasks out over scoped `std::thread`
//! workers. Tasks are pre-distributed into per-worker deques in contiguous
//! chunks; an idle worker pops from its own deque's back and, when empty,
//! steals from the front of a victim's — the classic owner-LIFO /
//! thief-FIFO discipline, here over short mutexed deques (task bodies in
//! this workspace are µs-scale predicate evaluations, so queue operations
//! are not the bottleneck).
//!
//! Determinism: task `i` always computes `f(i)` over immutable inputs and
//! its result is returned at index `i`; the schedule decides only
//! execution order. A pool with `threads <= 1` (or a run with fewer than
//! two tasks) executes inline on the caller's thread — the unchanged
//! sequential code path.
//!
//! Pool activity is recorded in the process-wide [`pivot_obs::metrics`]
//! registry: `par.runs`, `par.tasks`, `par.steals` counters and a
//! `par.run_ns` histogram (parallel runs only; the sequential path adds
//! zero overhead).

use crate::sched::SchedScript;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// A scoped work-stealing thread pool (see the module docs).
///
/// `Pool` is a lightweight descriptor — threads are spawned per
/// [`Pool::run`] via [`std::thread::scope`], so tasks may borrow from the
/// caller's stack and every worker has joined when `run` returns. Cloning
/// is cheap.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
    script: Option<SchedScript>,
}

/// Lock a mutex, recovering the guard from a poisoned lock (a worker panic
/// is re-raised at join; the queue of task indices stays valid).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Pool {
    /// A pool over `threads` workers. `0` means "use the machine"
    /// ([`crate::machine_threads`]); `1` is the sequential oracle path.
    pub fn new(threads: usize) -> Pool {
        let threads = if threads == 0 {
            crate::machine_threads()
        } else {
            threads
        };
        Pool {
            threads,
            script: None,
        }
    }

    /// The sequential pool: every task runs inline on the caller's thread.
    pub fn sequential() -> Pool {
        Pool::new(1)
    }

    /// Pool configured from the environment: thread count from
    /// `PIVOT_THREADS` (default 1), scheduler script from
    /// `PIVOT_SCHED_SEED` (default none).
    pub fn from_env() -> Pool {
        let mut pool = Pool::new(crate::resolve_threads(None));
        pool.script = SchedScript::from_env();
        pool
    }

    /// Attach a scripted scheduler: every task is perturbed with seeded
    /// yield points before it runs (interleaving stress; results are
    /// unaffected by construction).
    pub fn with_script(mut self, script: SchedScript) -> Pool {
        self.script = Some(script);
        self
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Does this pool run everything inline on the caller's thread?
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Run tasks `0..n`, returning `f(i)` at index `i` regardless of the
    /// schedule. Sequential pools (and runs with fewer than two tasks)
    /// execute inline, in index order, with no pool machinery at all.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || n < 2 {
            return (0..n).map(f).collect();
        }
        let t0 = Instant::now();
        let workers = self.threads.min(n);
        let chunk = n.div_ceil(workers);
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w * chunk..n.min((w + 1) * chunk)).collect()))
            .collect();
        let steals = AtomicU64::new(0);
        let queues = &queues;
        let steals_ref = &steals;
        let f = &f;
        let script = self.script.as_ref();
        let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        let buckets = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            // Own deque first (back = most recently queued
                            // of the contiguous chunk), then steal from a
                            // victim's front.
                            let mut task = lock(&queues[w]).pop_back();
                            if task.is_none() {
                                for off in 1..workers {
                                    let victim = (w + off) % workers;
                                    if let Some(i) = lock(&queues[victim]).pop_front() {
                                        steals_ref.fetch_add(1, Ordering::Relaxed);
                                        task = Some(i);
                                        break;
                                    }
                                }
                            }
                            match task {
                                None => break,
                                Some(i) => {
                                    if let Some(s) = script {
                                        s.perturb(i);
                                    }
                                    local.push((i, f(i)));
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            let mut buckets = Vec::with_capacity(workers);
            for h in handles {
                match h.join() {
                    Ok(local) => buckets.push(local),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            buckets
        });
        for bucket in buckets {
            for (i, v) in bucket {
                out[i] = Some(v);
            }
        }
        let m = pivot_obs::metrics::global();
        m.counter("par.runs").inc();
        m.counter("par.tasks").add(n as u64);
        m.counter("par.steals").add(steals.load(Ordering::Relaxed));
        m.histogram("par.run_ns").record(t0.elapsed());
        out.into_iter()
            .enumerate()
            .map(|(i, v)| match v {
                Some(v) => v,
                // Every index 0..n is queued exactly once and every queue
                // is drained before the scope joins.
                None => panic!("pool: task {i} produced no result"),
            })
            .collect()
    }

    /// Map `f` over a slice, preserving item order in the output.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Run two heterogeneous closures, `fb` on a scoped thread when the
    /// pool is parallel, and return both results.
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.is_sequential() {
            return (fa(), fb());
        }
        std::thread::scope(|scope| {
            let hb = scope.spawn(fb);
            let a = fa();
            match hb.join() {
                Ok(b) => (a, b),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = Pool::sequential();
        assert!(pool.is_sequential());
        let out = pool.run(5, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn parallel_results_are_positional() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 2, 3, 7, 64, 257] {
            let out = pool.run(n, |i| i as u64 + 1);
            let expected: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
            assert_eq!(out, expected, "n = {n}");
        }
    }

    #[test]
    fn parallel_matches_sequential_under_uneven_load() {
        let seq = Pool::sequential();
        let par = Pool::new(8);
        let work = |i: usize| -> u64 {
            // Skewed task costs to force stealing.
            let mut acc = i as u64;
            for _ in 0..(i % 13) * 800 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        assert_eq!(seq.run(300, work), par.run(300, work));
    }

    #[test]
    fn scripted_schedule_does_not_change_results() {
        let base = Pool::new(4);
        for seed in 0..4u64 {
            let scripted = Pool::new(4).with_script(SchedScript::new(seed));
            assert_eq!(
                base.run(97, |i| i.wrapping_mul(31)),
                scripted.run(97, |i| i.wrapping_mul(31)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tasks_borrow_from_caller() {
        let data: Vec<u64> = (0..100).collect();
        let pool = Pool::new(3);
        let doubled = pool.map(&data, |&x| x * 2);
        assert_eq!(doubled[99], 198);
    }

    #[test]
    fn join_runs_both() {
        for pool in [Pool::sequential(), Pool::new(2)] {
            let (a, b) = pool.join(|| 1 + 1, || "b");
            assert_eq!((a, b), (2, "b"));
        }
    }

    #[test]
    fn pool_records_metrics() {
        let m = pivot_obs::metrics::global();
        let before = (m.counter("par.runs").get(), m.counter("par.tasks").get());
        Pool::new(4).run(64, |i| i);
        let after = (m.counter("par.runs").get(), m.counter("par.tasks").get());
        assert!(after.0 > before.0);
        assert!(after.1 >= before.1 + 64);
    }

    #[test]
    #[should_panic(expected = "task body panicked")]
    fn worker_panic_propagates() {
        Pool::new(2).run(8, |i| {
            if i == 5 {
                panic!("task body panicked");
            }
            i
        });
    }
}

//! Program fragments that enable specific transformations.
//!
//! The 1994 paper has no public benchmark inputs, so workloads are seeded
//! synthetic programs assembled from fragments, each designed to create an
//! opportunity for one transformation kind (and often, transitively, for
//! others — e.g. a CSE fragment's reuse becomes a CPP/DCE chain). The
//! generator controls the mix, so benches can sweep "programs with many
//! unrelated transformations" (the regional-undo sweet spot) as well as
//! dense interaction chains.

use pivot_lang::builder::{add, c, ix, mul, sub, v, ProgramBuilder, ET};
use pivot_undo::XformKind;
use rand::Rng;

/// Emit one fragment enabling `kind` into the builder. `tag` uniquifies
/// variable names so fragments are data-independent unless `shared` links
/// them through a common array.
pub fn emit(b: &mut ProgramBuilder, kind: XformKind, tag: usize, rng: &mut impl Rng) {
    let n = |base: &str| format!("{base}{tag}");
    match kind {
        XformKind::Dce => {
            // dead = expr; live = expr'; write live
            b.assign(&n("dead"), add(v(&n("p")), c(rng.gen_range(1..9))));
            b.assign(&n("live"), add(v(&n("p")), c(2)));
            b.write(v(&n("live")));
        }
        XformKind::Cse => {
            b.assign(&n("d"), add(v(&n("e")), v(&n("f"))));
            b.assign(&n("r"), add(v(&n("e")), v(&n("f"))));
            b.write(v(&n("r")));
            b.write(v(&n("d")));
        }
        XformKind::Ctp => {
            b.assign(&n("k"), c(rng.gen_range(1..50)));
            b.assign(&n("u"), add(v(&n("k")), v(&n("w"))));
            b.write(v(&n("u")));
        }
        XformKind::Cpp => {
            b.read(&n("src"));
            b.assign(&n("cp"), v(&n("src")));
            b.write(add(v(&n("cp")), c(1)));
        }
        XformKind::Cfo => {
            let x = rng.gen_range(2..20);
            let y = rng.gen_range(2..20);
            b.assign(&n("g"), add(mul(c(x), c(y)), v(&n("z"))));
            b.write(v(&n("g")));
        }
        XformKind::Icm => {
            let trip = rng.gen_range(2..6) * 2;
            b.do_loop(&n("i"), c(1), c(trip), |b| {
                b.assign(&n("inv"), add(v(&n("a")), v(&n("b"))));
                b.assign_ix(&n("A"), vec![v(&n("i"))], add(v(&n("inv")), v(&n("i"))));
            });
            b.write(ix(&n("A"), vec![c(1)]));
        }
        XformKind::Lur => {
            let trip = rng.gen_range(2..5) * 2;
            b.do_loop(&n("i"), c(1), c(trip), |b| {
                b.assign_ix(&n("U"), vec![v(&n("i"))], mul(v(&n("i")), c(3)));
            });
            b.write(ix(&n("U"), vec![c(2)]));
        }
        XformKind::Smi => {
            let trip = rng.gen_range(2..5) * 4;
            b.do_loop(&n("i"), c(1), c(trip), |b| {
                b.assign_ix(&n("S"), vec![v(&n("i"))], sub(v(&n("i")), c(1)));
            });
            b.write(ix(&n("S"), vec![c(3)]));
        }
        XformKind::Fus => {
            let trip = rng.gen_range(4..12);
            b.do_loop(&n("i"), c(1), c(trip), |b| {
                b.assign_ix(&n("F"), vec![v(&n("i"))], mul(v(&n("i")), c(2)));
            });
            b.do_loop(&n("i"), c(1), c(trip), |b| {
                b.assign_ix(
                    &n("G"),
                    vec![v(&n("i"))],
                    add(ix(&n("F"), vec![v(&n("i"))]), c(1)),
                );
            });
            b.write(ix(&n("G"), vec![c(1)]));
        }
        XformKind::Inx => {
            let t1 = rng.gen_range(3..8);
            let t2 = rng.gen_range(3..8);
            b.do_loop(&n("i"), c(1), c(t1), |b| {
                b.do_loop(&n("j"), c(1), c(t2), |b| {
                    b.assign_ix(
                        &n("M"),
                        vec![v(&n("i")), v(&n("j"))],
                        add(ix(&n("N"), vec![v(&n("i")), v(&n("j"))]), c(1)),
                    );
                });
            });
            b.write(ix(&n("M"), vec![c(1), c(1)]));
        }
    }
}

/// The Figure 1 fragment (enables CSE, CTP, INX, then ICM) with a unique tag.
pub fn figure1(b: &mut ProgramBuilder, tag: usize) {
    let n = |base: &str| format!("{base}{tag}");
    b.assign(&n("D"), add(v(&n("E")), v(&n("F"))));
    b.assign(&n("C"), c(1));
    b.do_loop(&n("i"), c(1), c(10), |b| {
        b.do_loop(&n("j"), c(1), c(5), |b| {
            b.assign_ix(
                &n("A"),
                vec![v(&n("j"))],
                add(ix(&n("B"), vec![v(&n("j"))]), v(&n("C"))),
            );
            b.assign_ix(
                &n("R"),
                vec![v(&n("i")), v(&n("j"))],
                add(v(&n("E")), v(&n("F"))),
            );
        });
    });
    b.write(ix(&n("A"), vec![c(1)]));
    b.write(ix(&n("R"), vec![c(2), c(3)]));
    b.write(v(&n("D")));
}

/// A fragment with no transformation opportunities (filler/noise).
pub fn noise(b: &mut ProgramBuilder, tag: usize, rng: &mut impl Rng) {
    let n = |base: &str| format!("noi{base}{tag}");
    b.read(&n("x"));
    let k: ET = c(rng.gen_range(1..5));
    b.assign(&n("y"), add(v(&n("x")), k));
    b.write(v(&n("y")));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_undo::engine::Session;
    use pivot_undo::ALL_KINDS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_fragment_enables_its_kind() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in ALL_KINDS {
            let mut b = ProgramBuilder::new();
            emit(&mut b, kind, 0, &mut rng);
            let prog = b.finish();
            let s = Session::new(prog);
            let opps = s.find(kind);
            assert!(
                !opps.is_empty(),
                "fragment for {kind} produced no opportunity:\n{}",
                s.source()
            );
        }
    }

    #[test]
    fn figure1_fragment_enables_sequence() {
        let mut b = ProgramBuilder::new();
        figure1(&mut b, 0);
        let mut s = Session::new(b.finish());
        for k in [
            XformKind::Cse,
            XformKind::Ctp,
            XformKind::Inx,
            XformKind::Icm,
        ] {
            assert!(
                s.apply_kind(k).is_some(),
                "{k} must apply to the figure1 fragment"
            );
        }
    }

    #[test]
    fn noise_fragment_is_inert() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = ProgramBuilder::new();
        noise(&mut b, 0, &mut rng);
        let s = Session::new(b.finish());
        assert!(
            s.find_all().is_empty(),
            "noise must enable nothing:\n{}",
            s.source()
        );
    }

    #[test]
    fn fragments_compose_independently() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = ProgramBuilder::new();
        for (i, kind) in ALL_KINDS.into_iter().enumerate() {
            emit(&mut b, kind, i, &mut rng);
        }
        let s = Session::new(b.finish());
        for kind in ALL_KINDS {
            assert!(!s.find(kind).is_empty(), "composed program lost {kind}");
        }
    }
}

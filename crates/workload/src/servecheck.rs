//! Crash-recovery soak for the serve daemon.
//!
//! The driver spawns the daemon as a child process over a shared journal
//! directory and keeps a local **replica** `Session` per served session —
//! the single-session replay every recovery is judged against. Rounds
//! alternate crash modes:
//!
//! * **kill-point** rounds arm `PIVOT_SERVE_KILL_AFTER_OPS`, so the child
//!   calls `abort()` right after the N-th commit record is durable but
//!   *before* the reply — the crash lands exactly on a transaction
//!   boundary and leaves one committed-but-unacknowledged operation;
//! * **hard-kill** rounds `kill()` the child from a timer thread while
//!   requests are in flight — the crash lands on an arbitrary byte/packet
//!   boundary;
//! * the final round drains gracefully and verifies every journal was
//!   compacted to a checkpoint.
//!
//! After each crash the driver may tear the journal tail (only a trailing
//! `begin` record, which by construction was never acknowledged) before
//! restarting, then recovers every session and reconciles the reported
//! fingerprint against the replica — directly, or with the one ambiguous
//! in-flight operation applied. Once per round it also probes checkpoint
//! torn-tail *detection*: a journal truncated inside its checkpoint
//! record must fail recovery, never silently shrink. A separate overload
//! phase checks graceful degradation: explicit `overloaded` and `timeout`
//! replies, surfaced on the scrape endpoint.

use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{snapshot, XformId, XformKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Soak shape.
#[derive(Clone, Debug)]
pub struct SoakCfg {
    /// Master seed for the op stream and crash timing.
    pub seed: u64,
    /// Concurrent sessions the daemon owns.
    pub sessions: usize,
    /// Crash/restart rounds (the last round drains gracefully).
    pub rounds: usize,
    /// Operation budget per round.
    pub ops_per_round: usize,
}

impl Default for SoakCfg {
    fn default() -> SoakCfg {
        SoakCfg {
            seed: 0x5EED,
            sessions: 64,
            rounds: 4,
            ops_per_round: 400,
        }
    }
}

/// What the soak observed.
#[derive(Debug, Default)]
pub struct SoakOutcome {
    /// Sessions opened.
    pub sessions: usize,
    /// Rounds driven.
    pub rounds: usize,
    /// Operations acknowledged by the daemon.
    pub ops_acked: u64,
    /// Crashes induced (kill-point aborts + hard kills).
    pub crashes: usize,
    /// Recoveries performed over the wire.
    pub recoveries: u64,
    /// Recoveries that restored from a compaction checkpoint.
    pub checkpoint_recoveries: u64,
    /// Torn journal tails injected before a restart.
    pub torn_tails: usize,
    /// Torn-checkpoint detection probes run (each must fail recovery).
    pub torn_checkpoint_probes: usize,
    /// Post-recovery audits run over the wire.
    pub audits: u64,
    /// Findings those audits reported (must be zero).
    pub audit_findings: u64,
    /// `overloaded` replies observed in the TCP overload phase.
    pub overload_rejections: u64,
    /// `timeout` replies observed in the TCP overload phase.
    pub timeout_replies: u64,
    /// `overloaded` replies observed in the Unix-socket overload phase.
    pub uds_overload_rejections: u64,
    /// `timeout` replies observed in the Unix-socket overload phase.
    pub uds_timeout_replies: u64,
    /// Invariant violations; empty on a passing soak.
    pub mismatches: Vec<String>,
}

impl SoakOutcome {
    /// True when every fingerprint reconciled, every audit was clean, and
    /// degradation under overload was explicit on both transports.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
            && self.audit_findings == 0
            && self.overload_rejections > 0
            && self.timeout_replies > 0
            && self.uds_ok()
    }

    /// Unix-socket overload degradation was explicit (vacuously true on
    /// platforms without Unix sockets, where the phase does not run).
    #[cfg(unix)]
    pub fn uds_ok(&self) -> bool {
        self.uds_overload_rejections > 0 && self.uds_timeout_replies > 0
    }

    /// See the Unix variant; non-Unix platforms skip the phase.
    #[cfg(not(unix))]
    pub fn uds_ok(&self) -> bool {
        true
    }
}

// -------------------------------------------------------------------
// Wire client
// -------------------------------------------------------------------

struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: &str) -> std::io::Result<Wire> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Wire { stream, reader })
    }

    /// One request/reply; `None` when the daemon died mid-exchange.
    fn req(&mut self, line: &str) -> Option<String> {
        let mut buf = line.as_bytes().to_vec();
        buf.push(b'\n');
        if self.stream.write_all(&buf).is_err() || self.stream.flush().is_err() {
            return None;
        }
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(reply.trim_end().to_string()),
        }
    }
}

/// Unix-socket twin of [`Wire`]: same line protocol, same timeouts.
#[cfg(unix)]
struct UdsWire {
    stream: std::os::unix::net::UnixStream,
    reader: BufReader<std::os::unix::net::UnixStream>,
}

#[cfg(unix)]
impl UdsWire {
    fn connect(path: &Path) -> std::io::Result<UdsWire> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(UdsWire { stream, reader })
    }

    /// One request/reply; `None` when the daemon died mid-exchange.
    fn req(&mut self, line: &str) -> Option<String> {
        let mut buf = line.as_bytes().to_vec();
        buf.push(b'\n');
        if self.stream.write_all(&buf).is_err() || self.stream.flush().is_err() {
            return None;
        }
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(reply.trim_end().to_string()),
        }
    }
}

fn reply_ok(reply: &str) -> bool {
    reply.starts_with("{\"ok\":true")
}

fn reply_field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = reply.find(&pat)? + pat.len();
    let rest = &reply[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

// -------------------------------------------------------------------
// Child daemon
// -------------------------------------------------------------------

struct ChildDaemon {
    child: Child,
    addr: String,
    scrape_addr: Option<String>,
    #[cfg_attr(not(unix), allow(dead_code))]
    uds_path: Option<String>,
}

fn spawn_child(
    journal_dir: &Path,
    kill_after_ops: Option<u64>,
    extra_args: &[&str],
) -> Result<ChildDaemon, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg("--journal-dir")
        .arg(journal_dir)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .args(extra_args)
        .env("PIVOT_SERVE_TEST_HOOKS", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match kill_after_ops {
        Some(n) => {
            cmd.env("PIVOT_SERVE_KILL_AFTER_OPS", n.to_string());
        }
        None => {
            cmd.env_remove("PIVOT_SERVE_KILL_AFTER_OPS");
        }
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn daemon: {e}"))?;
    let stdout = child.stdout.take().ok_or("daemon stdout not piped")?;
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let mut scrape_addr = None;
    // The daemon prints its bound addresses first; stop at the TCP one
    // (and the scrape one when requested) so we never block on a quiet
    // child.
    let want_scrape = extra_args.contains(&"--scrape-addr");
    let want_uds = extra_args.contains(&"--uds");
    let mut uds_path = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| format!("daemon stdout: {e}"))?;
        if let Some(a) = line.strip_prefix("listening tcp ") {
            addr = Some(a.trim().to_string());
        } else if let Some(a) = line.strip_prefix("scrape ") {
            scrape_addr = Some(a.trim().to_string());
        } else if let Some(p) = line.strip_prefix("listening uds ") {
            uds_path = Some(p.trim().to_string());
        }
        if addr.is_some()
            && (!want_scrape || scrape_addr.is_some())
            && (!want_uds || uds_path.is_some())
        {
            break;
        }
    }
    let addr = addr.ok_or("daemon never reported its address")?;
    Ok(ChildDaemon {
        child,
        addr,
        scrape_addr,
        uds_path,
    })
}

// -------------------------------------------------------------------
// Replicas and operations
// -------------------------------------------------------------------

/// Session source templates: every template offers CSE/CFO material plus
/// kind-specific opportunities, parameterized so sessions differ.
fn source_for(i: usize) -> String {
    match i % 3 {
        0 => format!(
            "d = e + f\nc = {}\ndo i = 1, {}\n  a(i) = b(i) + c\n  s(i) = e + f\nenddo\nx = 3 * 4\nwrite x\nwrite d\n",
            1 + i % 7,
            10 + i % 90
        ),
        1 => format!(
            "D = E + F\nC = 1\ndo i = 1, {}\n  do j = 1, {}\n    A(j) = B(j) + C\n    R(i, j) = E + F\n  enddo\nenddo\nx = {} * 4\nwrite x\n",
            50 + i % 50,
            10 + i % 40,
            2 + i % 5
        ),
        _ => format!(
            "t = u + v\nw = u + v\nk = {}\ndo i = 1, {}\n  m(i) = n(i) + k\nenddo\ny = 6 * 7\nwrite y\nwrite w\nwrite t\n",
            3 + i % 5,
            20 + i % 60
        ),
    }
}

const KINDS: &[XformKind] = &[
    XformKind::Cse,
    XformKind::Ctp,
    XformKind::Cfo,
    XformKind::Icm,
    XformKind::Inx,
    XformKind::Dce,
];

#[derive(Clone, Debug)]
enum Op {
    Apply(XformKind),
    Undo(u32),
}

impl Op {
    fn request(&self, session: &str) -> String {
        match self {
            Op::Apply(k) => {
                format!("{{\"req\":\"apply\",\"session\":\"{session}\",\"kind\":\"{k}\"}}")
            }
            Op::Undo(t) => format!("{{\"req\":\"undo\",\"session\":\"{session}\",\"target\":{t}}}"),
        }
    }
}

/// Mirror one operation on a replica exactly the way the daemon executes
/// it; returns true when it succeeded (changed state).
fn apply_local(s: &mut Session, op: &Op) -> bool {
    match op {
        Op::Apply(kind) => {
            let opps = s.find(*kind);
            match opps.first() {
                Some(opp) => s.apply(&opp.clone()).is_ok(),
                None => false,
            }
        }
        Op::Undo(target) => s.undo(XformId(*target), Strategy::Regional).is_ok(),
    }
}

fn random_op(rng: &mut StdRng, replica: &Session) -> Op {
    let history_len = replica.history.records.len() as u32;
    if history_len > 0 && rng.gen_bool(0.35) {
        Op::Undo(rng.gen_range(1..=history_len))
    } else {
        Op::Apply(KINDS[rng.gen_range(0..KINDS.len())])
    }
}

// -------------------------------------------------------------------
// The soak
// -------------------------------------------------------------------

enum Mode {
    KillPoint(u64),
    HardKill(u64),
    Graceful,
}

/// Run the crash-recovery soak; see the module docs for the shape.
pub fn soak(cfg: &SoakCfg) -> SoakOutcome {
    let mut out = SoakOutcome {
        sessions: cfg.sessions,
        rounds: cfg.rounds,
        ..SoakOutcome::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "pivot_servecheck_{}_{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        out.mismatches.push(format!("scratch dir: {e}"));
        return out;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut replicas: Vec<Session> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    for i in 0..cfg.sessions {
        let src = source_for(i);
        match Session::from_source(&src) {
            Ok(s) => {
                replicas.push(s);
                sources.push(src);
            }
            Err(e) => {
                out.mismatches.push(format!("template {i}: {e}"));
                return out;
            }
        }
    }
    // The one operation whose reply never arrived before a crash.
    let mut inflight: Option<(usize, Op)> = None;
    let mut opened = false;

    for round in 0..cfg.rounds {
        let mode = if round + 1 == cfg.rounds {
            Mode::Graceful
        } else if round % 2 == 0 {
            Mode::KillPoint(rng.gen_range(40..(40 + cfg.ops_per_round as u64 / 2)))
        } else {
            Mode::HardKill(rng.gen_range(200..1_500))
        };
        let kill_env = match mode {
            Mode::KillPoint(n) => Some(n),
            _ => None,
        };
        let daemon = match spawn_child(&dir, kill_env, &[]) {
            Ok(d) => d,
            Err(e) => {
                out.mismatches.push(format!("round {round}: {e}"));
                return out;
            }
        };
        let mut child = daemon.child;
        let mut wire = match Wire::connect(&daemon.addr) {
            Ok(w) => w,
            Err(e) => {
                out.mismatches.push(format!("round {round}: connect: {e}"));
                let _ = child.kill();
                return out;
            }
        };

        if !opened {
            for (i, src) in sources.iter().enumerate() {
                let line = format!(
                    "{{\"req\":\"open\",\"session\":\"s{i}\",\"source\":\"{}\"}}",
                    src.replace('\n', "\\n")
                );
                match wire.req(&line) {
                    Some(r) if reply_ok(&r) => {}
                    other => {
                        out.mismatches.push(format!("open s{i} failed: {other:?}"));
                        let _ = child.kill();
                        return out;
                    }
                }
            }
            opened = true;
        } else {
            // Recover every session and reconcile its fingerprint against
            // the replica — the single-session replay.
            let audit_every = (cfg.sessions / 16).max(1);
            for (i, replica) in replicas.iter_mut().enumerate() {
                let name = format!("s{i}");
                let r = match wire.req(&format!("{{\"req\":\"recover\",\"session\":\"{name}\"}}")) {
                    Some(r) => r,
                    None => {
                        out.mismatches
                            .push(format!("round {round}: daemon died recovering {name}"));
                        let _ = child.kill();
                        return out;
                    }
                };
                if !reply_ok(&r) {
                    out.mismatches
                        .push(format!("round {round}: recover {name}: {r}"));
                    continue;
                }
                out.recoveries += 1;
                if reply_field(&r, "from_checkpoint") == Some("true") {
                    out.checkpoint_recoveries += 1;
                }
                let got = reply_field(&r, "fingerprint").unwrap_or("?").to_string();
                let plain = format!("{:016x}", snapshot::fingerprint(replica));
                if got != plain {
                    // One operation may have committed without its ack:
                    // apply it and retry the match.
                    let resolved = match &inflight {
                        Some((sid, op)) if *sid == i => {
                            let mut probe = replica.clone();
                            apply_local(&mut probe, op);
                            let with_op = format!("{:016x}", snapshot::fingerprint(&probe));
                            if with_op == got {
                                *replica = probe;
                                true
                            } else {
                                false
                            }
                        }
                        _ => false,
                    };
                    if !resolved {
                        out.mismatches.push(format!(
                            "round {round}: {name} recovered to {got}, replica {plain}"
                        ));
                    }
                }
                if let Some((sid, _)) = &inflight {
                    if *sid == i {
                        inflight = None;
                    }
                }
                if i % audit_every == 0 {
                    let a = wire
                        .req(&format!("{{\"req\":\"audit\",\"session\":\"{name}\"}}"))
                        .unwrap_or_default();
                    if reply_ok(&a) {
                        out.audits += 1;
                        let findings: u64 = reply_field(&a, "findings")
                            .and_then(|f| f.parse().ok())
                            .unwrap_or(0);
                        if findings > 0 {
                            out.audit_findings += findings;
                            out.mismatches.push(format!(
                                "round {round}: post-recovery audit of {name} found {findings}"
                            ));
                        }
                    }
                }
            }
            // An in-flight op whose session recovered without it: the torn
            // tail discarded it, which is a legal outcome — drop it.
            inflight = None;
        }

        // A timer kills hard-kill rounds while requests are in flight.
        if let Mode::HardKill(delay_ms) = mode {
            let pid = child.id();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                // SIGKILL via the child handle is not shareable; use the
                // portable fallback of killing through a second handle.
                #[cfg(unix)]
                {
                    extern "C" {
                        fn kill(pid: i32, sig: i32) -> i32;
                    }
                    unsafe {
                        kill(pid as i32, 9);
                    }
                }
                #[cfg(not(unix))]
                let _ = pid;
            });
        }

        // Drive the op stream until the budget is spent or the daemon dies.
        let mut crashed = false;
        for _ in 0..cfg.ops_per_round {
            let sid = rng.gen_range(0..cfg.sessions);
            if rng.gen_bool(0.06) {
                // Periodic live fingerprint probe: state must agree with
                // the replica *between* crashes too.
                match wire.req(&format!(
                    "{{\"req\":\"fingerprint\",\"session\":\"s{sid}\"}}"
                )) {
                    Some(r) if reply_ok(&r) => {
                        let want = format!("{:016x}", snapshot::fingerprint(&replicas[sid]));
                        if reply_field(&r, "fingerprint") != Some(want.as_str()) {
                            out.mismatches.push(format!(
                                "round {round}: live fingerprint of s{sid} diverged: {r}"
                            ));
                        }
                    }
                    Some(r) => out
                        .mismatches
                        .push(format!("round {round}: fingerprint s{sid}: {r}")),
                    None => {
                        crashed = true;
                        break;
                    }
                }
                continue;
            }
            if rng.gen_bool(0.05) {
                // Checkpoint requests interleave with the op stream; they
                // change the journal, never the state.
                if wire
                    .req(&format!(
                        "{{\"req\":\"checkpoint\",\"session\":\"s{sid}\"}}"
                    ))
                    .is_none()
                {
                    crashed = true;
                    break;
                }
                continue;
            }
            let op = random_op(&mut rng, &replicas[sid]);
            match wire.req(&op.request(&format!("s{sid}"))) {
                Some(reply) => {
                    let local_ok = apply_local(&mut replicas[sid], &op);
                    let remote_ok = reply_ok(&reply);
                    out.ops_acked += 1;
                    if local_ok != remote_ok {
                        out.mismatches.push(format!(
                            "round {round}: s{sid} {op:?} parity: daemon {remote_ok} \
                             ({reply}) vs replica {local_ok}"
                        ));
                    }
                }
                None => {
                    inflight = Some((sid, op));
                    crashed = true;
                    break;
                }
            }
        }

        match mode {
            Mode::Graceful => {
                if crashed {
                    out.mismatches
                        .push(format!("round {round}: daemon died in the graceful round"));
                    let _ = child.kill();
                } else {
                    if wire.req("{\"req\":\"shutdown\"}").is_none() {
                        out.mismatches
                            .push(format!("round {round}: shutdown got no reply"));
                    }
                    let _ = child.wait();
                    verify_drained(&dir, &sources, &replicas, &mut out);
                }
            }
            Mode::KillPoint(_) | Mode::HardKill(_) => {
                if !crashed {
                    // Budget ran out before the kill landed; finish the
                    // job so the round still exercises recovery.
                    let _ = child.kill();
                    inflight = None;
                }
                let _ = child.wait();
                out.crashes += 1;
                tear_unacked_tail(&dir, &mut rng, cfg.sessions, &inflight, &mut out);
                torn_checkpoint_probe(&dir, &sources, &mut out);
            }
        }
    }

    overload_phase(&dir, &mut out);
    #[cfg(unix)]
    overload_phase_uds(&dir, &mut out);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Tear a journal tail before the restart.
///
/// Two flavors, both guaranteed never to touch an acknowledged operation:
/// a trailing `begin` record of the in-flight session (the kill landed
/// between begin and commit — a begin can never have been acked, since
/// any acked outcome appends its commit/abort first) is torn in place;
/// and on a random session we simulate a crash mid-append by appending a
/// strict prefix of one of its own begin records, which recovery must
/// discard as a torn final line.
fn tear_unacked_tail(
    dir: &Path,
    rng: &mut StdRng,
    sessions: usize,
    inflight: &Option<(usize, Op)>,
    out: &mut SoakOutcome,
) {
    if let Some((sid, _)) = inflight {
        let jpath = dir.join(format!("s{sid}.journal"));
        if let Ok(text) = std::fs::read_to_string(&jpath) {
            if let Some(last) = text.lines().last() {
                if last.contains("\"rec\":\"begin\"") {
                    let cut = rng.gen_range(1..=last.len());
                    let keep = text.trim_end_matches('\n').len() - cut;
                    if std::fs::write(&jpath, &text.as_bytes()[..keep]).is_ok() {
                        out.torn_tails += 1;
                    }
                }
            }
        }
    }
    // Scan from a random start until we find a journal that has anything to
    // tear — at full scale most sessions never see an op, so a single random
    // pick would almost always land on an empty journal.
    let start = rng.gen_range(0..sessions);
    let Some((jpath, text, begin)) = (0..sessions).find_map(|off| {
        let sid = (start + off) % sessions;
        let jpath = dir.join(format!("s{sid}.journal"));
        let text = std::fs::read_to_string(&jpath).ok()?;
        if !text.ends_with('\n') {
            return None; // already torn naturally; leave it be
        }
        let begin = text
            .lines()
            .rev()
            .find(|l| l.contains("\"rec\":\"begin\""))?
            .to_string();
        Some((jpath, text, begin))
    }) else {
        return;
    };
    let begin = begin.as_str();
    let cut = rng.gen_range(1..begin.len());
    let stub = begin[..cut].to_string();
    let mut bytes = text.into_bytes();
    bytes.extend_from_slice(stub.as_bytes());
    if std::fs::write(&jpath, bytes).is_ok() {
        out.torn_tails += 1;
    }
}

/// Recovery of a journal truncated *inside* its checkpoint record must
/// fail loudly — run the probe on a copy so the real journal is untouched.
fn torn_checkpoint_probe(dir: &Path, sources: &[String], out: &mut SoakOutcome) {
    for (i, src) in sources.iter().enumerate() {
        let jpath = dir.join(format!("s{i}.journal"));
        let Ok(text) = std::fs::read_to_string(&jpath) else {
            continue;
        };
        let Some(first) = text.lines().next() else {
            continue;
        };
        if !first.starts_with("{\"rec\":\"checkpoint\"") || first.len() < 40 {
            continue;
        }
        let probe = dir.join("torn_probe.journal");
        if std::fs::write(&probe, &first.as_bytes()[..first.len() / 2]).is_err() {
            continue;
        }
        out.torn_checkpoint_probes += 1;
        let prog = match pivot_lang::parser::parse(src) {
            Ok(p) => p,
            Err(e) => {
                out.mismatches.push(format!("probe parse: {e}"));
                return;
            }
        };
        match Session::recover(prog, &probe) {
            Err(e) if e.to_string().contains("checkpoint") => {}
            Err(e) => out
                .mismatches
                .push(format!("torn-checkpoint probe s{i}: wrong error: {e}")),
            Ok(r) => out.mismatches.push(format!(
                "torn-checkpoint probe s{i}: silently recovered {} txns",
                r.committed
            )),
        }
        let _ = std::fs::remove_file(&probe);
        return;
    }
}

/// After the graceful round: every journal must be compacted to a single
/// checkpoint, and an independent in-process recovery of each must land
/// on the replica's fingerprint exactly.
fn verify_drained(dir: &Path, sources: &[String], replicas: &[Session], out: &mut SoakOutcome) {
    for (i, (src, replica)) in sources.iter().zip(replicas).enumerate() {
        let jpath = dir.join(format!("s{i}.journal"));
        let text = match std::fs::read_to_string(&jpath) {
            Ok(t) => t,
            Err(e) => {
                out.mismatches
                    .push(format!("drain left no journal for s{i}: {e}"));
                continue;
            }
        };
        if !text.starts_with("{\"rec\":\"checkpoint\"") || text.lines().count() != 1 {
            out.mismatches.push(format!(
                "drain did not compact s{i}: {} lines",
                text.lines().count()
            ));
            continue;
        }
        let prog = match pivot_lang::parser::parse(src) {
            Ok(p) => p,
            Err(e) => {
                out.mismatches.push(format!("drain verify parse s{i}: {e}"));
                continue;
            }
        };
        match Session::recover(prog, &jpath) {
            Ok(r) => {
                let got = snapshot::fingerprint(&r.session);
                let want = snapshot::fingerprint(replica);
                if got != want {
                    out.mismatches.push(format!(
                        "final recovery of s{i}: {got:016x} vs replay {want:016x}"
                    ));
                }
            }
            Err(e) => out
                .mismatches
                .push(format!("final recovery of s{i} failed: {e}")),
        }
    }
}

/// Overload phase: a tiny daemon must reject excess connections and stall
/// mid-line clients with *typed* replies, and surface both on its scrape
/// endpoint.
fn overload_phase(dir: &Path, out: &mut SoakOutcome) {
    let odir = dir.join("overload");
    let _ = std::fs::create_dir_all(&odir);
    let daemon = match spawn_child(
        &odir,
        None,
        &[
            "--max-conns",
            "4",
            "--read-timeout-ms",
            "300",
            "--scrape-addr",
            "127.0.0.1:0",
        ],
    ) {
        Ok(d) => d,
        Err(e) => {
            out.mismatches.push(format!("overload phase: {e}"));
            return;
        }
    };
    let mut child = daemon.child;
    // Fill the connection budget with live connections.
    let mut held = Vec::new();
    for _ in 0..4 {
        match Wire::connect(&daemon.addr) {
            Ok(mut w) => {
                let _ = w.req("{\"req\":\"ping\"}");
                held.push(w);
            }
            Err(e) => {
                out.mismatches.push(format!("overload connect: {e}"));
                let _ = child.kill();
                return;
            }
        }
    }
    // Excess connections must be rejected explicitly.
    for _ in 0..6 {
        if let Ok(mut w) = Wire::connect(&daemon.addr) {
            if let Some(reply) = w.req("{\"req\":\"ping\"}") {
                if reply.contains("\"error\":\"overloaded\"") {
                    out.overload_rejections += 1;
                }
            }
        }
    }
    // A stalled mid-line client must get a typed timeout.
    drop(held.pop());
    std::thread::sleep(Duration::from_millis(50));
    if let Ok(mut w) = Wire::connect(&daemon.addr) {
        let _ = w.stream.write_all(b"{\"req\":\"pi");
        let _ = w.stream.flush();
        let mut reply = String::new();
        if w.reader.read_line(&mut reply).is_ok() && reply.contains("\"error\":\"timeout\"") {
            out.timeout_replies += 1;
        }
    }
    // Both degradations are visible on the scrape endpoint.
    if let Some(scrape) = &daemon.scrape_addr {
        match scrape_text(scrape) {
            Ok(text) => {
                for family in ["pivot_serve_rejected_total", "pivot_serve_timeouts_total"] {
                    let moved = text.lines().any(|l| {
                        l.starts_with(family)
                            && l.rsplit(' ')
                                .next()
                                .and_then(|v| v.parse::<u64>().ok())
                                .is_some_and(|v| v > 0)
                    });
                    if !moved {
                        out.mismatches
                            .push(format!("scrape endpoint missing nonzero {family}"));
                    }
                }
            }
            Err(e) => out.mismatches.push(format!("scrape: {e}")),
        }
    }
    if let Ok(mut w) = Wire::connect(&daemon.addr) {
        let _ = w.req("{\"req\":\"shutdown\"}");
    }
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            _ => {
                let _ = child.kill();
                break;
            }
        }
    }
}

/// Unix-socket overload phase: the same tiny daemon, reached over its
/// `--uds` listener, must degrade exactly like the TCP path — explicit
/// `overloaded` rejections once the (transport-agnostic) connection
/// budget is full, a typed `timeout` for a stalled mid-line client, and
/// both surfaced through the same `serve.*` counter families on the
/// scrape endpoint.
#[cfg(unix)]
fn overload_phase_uds(dir: &Path, out: &mut SoakOutcome) {
    let odir = dir.join("overload_uds");
    let _ = std::fs::create_dir_all(&odir);
    let sock = odir.join("serve.sock");
    let sock_arg = sock.to_string_lossy().into_owned();
    let daemon = match spawn_child(
        &odir,
        None,
        &[
            "--uds",
            &sock_arg,
            "--max-conns",
            "4",
            "--read-timeout-ms",
            "300",
            "--scrape-addr",
            "127.0.0.1:0",
        ],
    ) {
        Ok(d) => d,
        Err(e) => {
            out.mismatches.push(format!("uds overload phase: {e}"));
            return;
        }
    };
    let mut child = daemon.child;
    let Some(sock_path) = daemon.uds_path.as_deref().map(Path::new) else {
        out.mismatches
            .push("uds overload phase: daemon never reported its socket".into());
        let _ = child.kill();
        return;
    };
    // Fill the shared connection budget entirely over the Unix socket.
    let mut held = Vec::new();
    for _ in 0..4 {
        match UdsWire::connect(sock_path) {
            Ok(mut w) => {
                let _ = w.req("{\"req\":\"ping\"}");
                held.push(w);
            }
            Err(e) => {
                out.mismatches.push(format!("uds overload connect: {e}"));
                let _ = child.kill();
                return;
            }
        }
    }
    // Excess Unix-socket connections must be rejected explicitly.
    for _ in 0..6 {
        if let Ok(mut w) = UdsWire::connect(sock_path) {
            if let Some(reply) = w.req("{\"req\":\"ping\"}") {
                if reply.contains("\"error\":\"overloaded\"") {
                    out.uds_overload_rejections += 1;
                }
            }
        }
    }
    // A stalled mid-line Unix-socket client must get a typed timeout.
    drop(held.pop());
    std::thread::sleep(Duration::from_millis(50));
    if let Ok(mut w) = UdsWire::connect(sock_path) {
        let _ = w.stream.write_all(b"{\"req\":\"pi");
        let _ = w.stream.flush();
        let mut reply = String::new();
        if w.reader.read_line(&mut reply).is_ok() && reply.contains("\"error\":\"timeout\"") {
            out.uds_timeout_replies += 1;
        }
    }
    // The same counter families the TCP phase checks must have moved.
    if let Some(scrape) = &daemon.scrape_addr {
        match scrape_text(scrape) {
            Ok(text) => {
                for family in ["pivot_serve_rejected_total", "pivot_serve_timeouts_total"] {
                    let moved = text.lines().any(|l| {
                        l.starts_with(family)
                            && l.rsplit(' ')
                                .next()
                                .and_then(|v| v.parse::<u64>().ok())
                                .is_some_and(|v| v > 0)
                    });
                    if !moved {
                        out.mismatches
                            .push(format!("uds scrape endpoint missing nonzero {family}"));
                    }
                }
            }
            Err(e) => out.mismatches.push(format!("uds scrape: {e}")),
        }
    }
    if let Ok(mut w) = UdsWire::connect(sock_path) {
        let _ = w.req("{\"req\":\"shutdown\"}");
    }
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            _ => {
                let _ = child.kill();
                break;
            }
        }
    }
}

/// Minimal HTTP GET of `/metrics` against the scrape endpoint.
fn scrape_text(addr: &str) -> Result<String, String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut body = String::new();
    s.read_to_string(&mut body).map_err(|e| e.to_string())?;
    Ok(body)
}

// -------------------------------------------------------------------
// Compaction bench
// -------------------------------------------------------------------

/// One row of the compaction bench.
#[derive(Debug)]
pub struct CompactionRow {
    /// Committed transactions in the session's lifetime.
    pub ops: usize,
    /// Journal bytes before compaction.
    pub full_bytes: u64,
    /// Recovery wall time replaying the full journal.
    pub full_recover_ns: u128,
    /// Journal bytes after compaction (checkpoint + empty tail).
    pub compacted_bytes: u64,
    /// Recovery wall time from the checkpoint.
    pub compacted_recover_ns: u128,
}

/// Measure how compaction bounds recovery for a long-lived session with
/// *bounded live state*: apply/undo churn accumulates a journal whose
/// length tracks the session's lifetime while the state stays small, so
/// full-journal recovery replays O(lifetime) transactions where a
/// checkpoint restores O(state). (With a state-growing op mix the
/// checkpoint snapshot grows alongside the state and the bound
/// disappears — the soak covers that shape; this bench isolates the
/// one compaction exists for.)
pub fn compaction_bench(seed: u64, op_counts: &[usize]) -> Result<Vec<CompactionRow>, String> {
    let dir = std::env::temp_dir().join(format!("pivot_servebench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let src = source_for(1);
    let prog = || pivot_lang::parser::parse(&src).map_err(|e| e.to_string());
    let mut rows = Vec::new();
    for &ops in op_counts {
        let jpath = dir.join(format!("bench_{ops}.journal"));
        let _ = std::fs::remove_file(&jpath);
        let mut s = Session::from_source(&src).map_err(|e| e.to_string())?;
        s.set_journal(pivot_undo::Journal::open(&jpath).map_err(|e| e.to_string())?);
        let mut rng = StdRng::seed_from_u64(seed ^ ops as u64);
        let mut committed = 0usize;
        while committed < ops {
            let kind = KINDS[rng.gen_range(0..KINDS.len())];
            let applied = {
                let opps = s.find(kind);
                match opps.first() {
                    Some(opp) => s.apply(&opp.clone()).ok(),
                    None => None,
                }
            };
            let Some(id) = applied else { continue };
            committed += 1;
            if committed >= ops {
                break;
            }
            // Undo what was just applied: the journal grows two records
            // per cycle, the live state returns to (near) the original.
            if s.undo(id, Strategy::Regional).is_ok() {
                committed += 1;
            }
        }
        let full_bytes = std::fs::metadata(&jpath).map_err(|e| e.to_string())?.len();
        let t0 = Instant::now();
        let full = Session::recover(prog()?, &jpath).map_err(|e| e.to_string())?;
        let full_recover_ns = t0.elapsed().as_nanos();
        let want = snapshot::fingerprint(&full.session);
        drop(full);
        s.compact_journal().map_err(|e| e.to_string())?;
        let compacted_bytes = std::fs::metadata(&jpath).map_err(|e| e.to_string())?.len();
        let t0 = Instant::now();
        let compacted = Session::recover(prog()?, &jpath).map_err(|e| e.to_string())?;
        let compacted_recover_ns = t0.elapsed().as_nanos();
        if snapshot::fingerprint(&compacted.session) != want || snapshot::fingerprint(&s) != want {
            return Err(format!("bench at {ops} ops: fingerprints diverged"));
        }
        rows.push(CompactionRow {
            ops,
            full_bytes,
            full_recover_ns,
            compacted_bytes,
            compacted_recover_ns,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(rows)
}

/// Render bench rows as the `BENCH_serve.json` document.
pub fn render_bench_json(soak: &SoakOutcome, rows: &[CompactionRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"E17-serve\",\n  \"soak\": {\n");
    out.push_str(&format!("    \"sessions\": {},\n", soak.sessions));
    out.push_str(&format!("    \"rounds\": {},\n", soak.rounds));
    out.push_str(&format!("    \"ops_acked\": {},\n", soak.ops_acked));
    out.push_str(&format!("    \"crashes\": {},\n", soak.crashes));
    out.push_str(&format!("    \"recoveries\": {},\n", soak.recoveries));
    out.push_str(&format!(
        "    \"checkpoint_recoveries\": {},\n",
        soak.checkpoint_recoveries
    ));
    out.push_str(&format!("    \"torn_tails\": {},\n", soak.torn_tails));
    out.push_str(&format!(
        "    \"torn_checkpoint_probes\": {},\n",
        soak.torn_checkpoint_probes
    ));
    out.push_str(&format!("    \"audits\": {},\n", soak.audits));
    out.push_str(&format!(
        "    \"overload_rejections\": {},\n",
        soak.overload_rejections
    ));
    out.push_str(&format!(
        "    \"timeout_replies\": {},\n",
        soak.timeout_replies
    ));
    out.push_str(&format!(
        "    \"uds_overload_rejections\": {},\n",
        soak.uds_overload_rejections
    ));
    out.push_str(&format!(
        "    \"uds_timeout_replies\": {},\n",
        soak.uds_timeout_replies
    ));
    out.push_str(&format!("    \"mismatches\": {}\n", soak.mismatches.len()));
    out.push_str("  },\n  \"compaction\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"ops\": {}, \"full_bytes\": {}, \"full_recover_ms\": {:.3}, \
             \"compacted_bytes\": {}, \"compacted_recover_ms\": {:.3}}}{}\n",
            r.ops,
            r.full_bytes,
            r.full_recover_ns as f64 / 1e6,
            r.compacted_bytes,
            r.compacted_recover_ns as f64 / 1e6,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

//! Fault-injection sweep driver.
//!
//! For every transformation applied to a set of seeded workloads (plus a
//! Figure 1 interaction cascade), this module re-runs the undo request with
//! a deterministic fault armed at each reachable fault point — the Nth
//! inverse action, the Nth safety re-check, the Nth IR rebuild, and a
//! poisoned transformation kind — and asserts the transactional guarantees
//! after every induced rollback:
//!
//! 1. the program source is byte-identical to the pre-undo checkpoint;
//! 2. the interpreter produces identical outputs on seeded input streams;
//! 3. [`Session::consistency_violations`] reports nothing.
//!
//! The sweep is exhaustive per fault family: N is incremented until the
//! request survives (the cascade performed fewer than N such operations),
//! so every reachable fault point in every cascade is exercised once.

use crate::{gen_inputs, prepare, Prepared, WorkloadCfg};
use pivot_lang::interp;
use pivot_undo::engine::Session;
use pivot_undo::{FaultPlan, Strategy, UndoError, XformId, XformKind, ALL_KINDS};

/// Hard cap on per-family fault indices; a single undo cascade in these
/// workloads performs far fewer than this many operations of any one kind.
const MAX_FAULT_INDEX: u64 = 64;

/// Aggregate result of a fault sweep.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Undo requests attempted with a fault armed.
    pub trials: usize,
    /// Trials where the armed fault tripped and the engine rolled back.
    pub rollbacks: usize,
    /// Trials where the cascade finished before reaching the fault point.
    pub survived: usize,
    /// Invariant violations observed after rollbacks (empty = pass).
    pub violations: Vec<String>,
}

impl SweepOutcome {
    /// True when every induced rollback preserved all invariants.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reference state captured before a faulted undo attempt.
struct Reference {
    source: String,
    outputs: Vec<Vec<i64>>,
    inputs: Vec<Vec<i64>>,
}

impl Reference {
    fn capture(session: &Session, seed: u64) -> Reference {
        let inputs: Vec<Vec<i64>> = (0..3u64).map(|i| gen_inputs(seed ^ (i + 1), 64)).collect();
        let outputs = inputs
            .iter()
            .map(|inp| interp::run_default(&session.prog, inp).unwrap_or_default())
            .collect();
        Reference {
            source: session.source(),
            outputs,
            inputs,
        }
    }

    fn check(&self, session: &Session, label: &str, violations: &mut Vec<String>) {
        if session.source() != self.source {
            violations.push(format!(
                "{label}: post-rollback source differs from checkpoint"
            ));
        }
        for (inp, want) in self.inputs.iter().zip(&self.outputs) {
            let got = interp::run_default(&session.prog, inp).unwrap_or_default();
            if &got != want {
                violations.push(format!("{label}: post-rollback interpreter output differs"));
                break;
            }
        }
        for v in session.consistency_violations() {
            violations.push(format!("{label}: {v}"));
        }
    }
}

/// Run one undo attempt with `plan` armed on a clone of `base`.
/// Returns true when the fault tripped (rollback observed).
fn trial(
    base: &Session,
    target: XformId,
    plan: FaultPlan,
    reference: &Reference,
    label: &str,
    outcome: &mut SweepOutcome,
) -> bool {
    let mut s = base.clone();
    s.arm_faults(plan);
    outcome.trials += 1;
    match s.undo(target, Strategy::Regional) {
        Err(UndoError::RolledBack { .. }) => {
            outcome.rollbacks += 1;
            reference.check(&s, label, &mut outcome.violations);
            true
        }
        Ok(_) => {
            outcome.survived += 1;
            // The fault point was past the end of the cascade; the undo
            // must still leave a consistent session.
            for v in s.consistency_violations() {
                outcome.violations.push(format!("{label} (clean): {v}"));
            }
            false
        }
        Err(e) => {
            outcome
                .violations
                .push(format!("{label}: unexpected undo error: {e}"));
            false
        }
    }
}

/// Sweep every fault family over every applied transformation of `base`.
fn sweep_session(base: &Session, applied: &[XformId], seed: u64, outcome: &mut SweepOutcome) {
    let reference = Reference::capture(base, seed);
    for &target in applied {
        for n in 1..=MAX_FAULT_INDEX {
            let label = format!("seed {seed} undo {target} inverse-action #{n}");
            if !trial(
                base,
                target,
                FaultPlan::nth_inverse_action(n),
                &reference,
                &label,
                outcome,
            ) {
                break;
            }
        }
        for n in 1..=MAX_FAULT_INDEX {
            let label = format!("seed {seed} undo {target} safety-check #{n}");
            if !trial(
                base,
                target,
                FaultPlan::nth_safety_check(n),
                &reference,
                &label,
                outcome,
            ) {
                break;
            }
        }
        for n in 1..=MAX_FAULT_INDEX {
            let label = format!("seed {seed} undo {target} rebuild #{n}");
            if !trial(
                base,
                target,
                FaultPlan::nth_rebuild(n),
                &reference,
                &label,
                outcome,
            ) {
                break;
            }
        }
        let kinds: Vec<XformKind> = ALL_KINDS
            .iter()
            .copied()
            .filter(|k| base.history.records.iter().any(|r| r.kind == *k))
            .collect();
        for kind in kinds {
            let label = format!("seed {seed} undo {target} poisoned {kind}");
            trial(
                base,
                target,
                FaultPlan::poison(kind),
                &reference,
                &label,
                outcome,
            );
        }
    }
}

/// Run the full sweep: several seeded workloads plus one with Figure 1
/// interaction cascades, each prepared with up to `max` transformations.
pub fn sweep_faults(seed: u64, max: usize) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    let shapes = [
        WorkloadCfg {
            fragments: 6,
            ..Default::default()
        },
        WorkloadCfg {
            fragments: 4,
            figure1_chains: 1,
            ..Default::default()
        },
    ];
    for (i, cfg) in shapes.iter().enumerate() {
        let s = seed.wrapping_add(i as u64);
        let Prepared { session, applied } = prepare(s, cfg, max);
        sweep_session(&session, &applied, s, &mut outcome);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_small_workload_passes() {
        let outcome = sweep_faults(7, 4);
        assert!(outcome.trials > 0);
        assert!(outcome.rollbacks > 0, "no fault ever tripped: {outcome:?}");
        assert!(outcome.passed(), "violations: {:#?}", outcome.violations);
    }
}

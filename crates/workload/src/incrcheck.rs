//! Checked-mode incremental-update sweep driver.
//!
//! Runs seeded workloads end to end — build-up applies, a shuffled
//! independent-order undo of everything, and an edit with the
//! unsafe-removal sweep — entirely in [`RepMode::Checked`], where every
//! representation refresh performs the delta-driven incremental update
//! *and* a from-scratch rebuild, panicking on any structural divergence.
//! A completed sweep is therefore itself the conformance verdict; the
//! outcome additionally reports how much work the incremental path saved
//! (dirty-block ratios, fallback share) from the `rep.incr.*` counters.

use crate::{gen_edit, prepare_in_mode, WorkloadCfg};
use pivot_undo::{RepMode, Strategy, UndoError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Aggregate result of a Checked-mode sweep.
#[derive(Debug, Default)]
pub struct IncrCheckOutcome {
    /// Seeds driven.
    pub seeds: usize,
    /// Apply/undo/edit operations performed (each refreshed the rep).
    pub operations: usize,
    /// Refreshes that took the incremental path.
    pub incremental_updates: u64,
    /// Refreshes that fell back to a batch rebuild.
    pub fallbacks: u64,
    /// Blocks seeded dirty across all incremental updates.
    pub dirty_blocks: u64,
    /// Total CFG blocks across all incremental updates.
    pub total_blocks: u64,
}

impl IncrCheckOutcome {
    /// Mean fraction of blocks an incremental update re-seeded as dirty.
    pub fn dirty_ratio(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.dirty_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Fraction of delta refreshes that stayed incremental.
    pub fn incremental_share(&self) -> f64 {
        let total = self.incremental_updates + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.incremental_updates as f64 / total as f64
        }
    }

    /// A sweep proves nothing if the incremental path never ran.
    pub fn passed(&self) -> bool {
        self.incremental_updates > 0
    }
}

/// Drive `count` seeds starting at `seed0`, up to `max` transformations
/// each, in [`RepMode::Checked`]. Panics on any batch/incremental
/// divergence (that is the check).
pub fn sweep_incr(seed0: u64, count: usize, max: usize) -> IncrCheckOutcome {
    let cfg = WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.3,
        figure1_chains: 1,
        ..Default::default()
    };
    let m = pivot_obs::metrics::global();
    let snap = |name: &str| m.counter(name).get();
    let before = (
        snap("rep.incr.updates"),
        snap("rep.incr.fallback"),
        snap("rep.incr.dirty_blocks"),
        snap("rep.incr.total_blocks"),
    );

    let mut outcome = IncrCheckOutcome::default();
    for seed in seed0..seed0 + count as u64 {
        let mut p = prepare_in_mode(seed, &cfg, max, RepMode::Checked);
        outcome.operations += p.applied.len();
        let mut order = p.applied.clone();
        order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x1C4A));
        for id in order {
            match p.session.undo(id, Strategy::Regional) {
                Ok(_) | Err(UndoError::AlreadyUndone(_)) => outcome.operations += 1,
                Err(e) => panic!("seed {seed}: undo {id}: {e}"),
            }
        }
        let edit = gen_edit(&p.session, seed.wrapping_mul(131).wrapping_add(7));
        if p.session.edit(&edit).is_ok() {
            outcome.operations += 1;
            p.session.remove_unsafe(Strategy::Regional);
        }
        p.session.assert_consistent();
        outcome.seeds += 1;
    }

    outcome.incremental_updates = snap("rep.incr.updates") - before.0;
    outcome.fallbacks = snap("rep.incr.fallback") - before.1;
    outcome.dirty_blocks = snap("rep.incr.dirty_blocks") - before.2;
    outcome.total_blocks = snap("rep.incr.total_blocks") - before.3;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_takes_incremental_path() {
        let o = sweep_incr(40, 3, 6);
        assert_eq!(o.seeds, 3);
        assert!(o.operations > 0);
        assert!(o.passed(), "incremental path never ran: {o:?}");
        assert!(o.dirty_ratio() > 0.0 && o.dirty_ratio() <= 1.0);
    }
}

//! Audit sweep driver: exercise the independent auditor
//! ([`pivot_audit`]) against seeded workloads from three directions.
//!
//! 1. **Clean phase** — drive apply/undo/edit workloads and audit at
//!    every *reconciled* boundary (the engine's own `find_unsafe()`
//!    empty). Any finding is a false positive: either an auditor bug or
//!    a real engine bug, and both demand attention.
//! 2. **Poison phase** — fork the session, corrupt exactly one facet of
//!    the `(Program, Rep, Log, History)` quadruple, and demand the
//!    expected lint fires. A missed poison means a blind spot.
//! 3. **Fault cross-check** — arm the engine's deterministic
//!    [`FaultPlan`] injection, force mid-cascade rollbacks, and audit
//!    the rolled-back session: transactional recovery must leave
//!    nothing for an independent observer to find.

use crate::{gen_edit, prepare, WorkloadCfg};
use pivot_audit::{audit_session, AuditConfig};
use pivot_lang::{ExprKind, StmtId, StmtKind};
use pivot_undo::actions::{ActionKind, ActionTag, NodeRef, Stamp, StampedAction};
use pivot_undo::engine::Session;
use pivot_undo::history::XformState;
use pivot_undo::{FaultPlan, Strategy, UndoError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aggregate result of an audit sweep.
#[derive(Debug, Default)]
pub struct AuditSweepOutcome {
    /// Seeds driven through the clean phase.
    pub seeds: usize,
    /// Audits performed on reconciled clean states.
    pub clean_audits: u64,
    /// Findings reported on those states (must be zero).
    pub clean_findings: u64,
    /// Poisoned forks audited.
    pub poisons: u64,
    /// Poisoned forks where the expected lint fired.
    pub detected: u64,
    /// Descriptions of poisons the auditor missed (empty = pass).
    pub missed: Vec<String>,
    /// Faulted undo attempts audited after rollback or survival.
    pub fault_trials: u64,
    /// Invariant violations (clean-state findings, missed poisons with
    /// detail, post-rollback findings).
    pub violations: Vec<String>,
}

impl AuditSweepOutcome {
    /// Overall detection rate over the poison phase, in [0, 1].
    pub fn detection_rate(&self) -> f64 {
        if self.poisons == 0 {
            return 1.0;
        }
        self.detected as f64 / self.poisons as f64
    }

    /// True when clean states audit clean, every poison was detected,
    /// and every induced rollback left nothing to find.
    pub fn passed(&self) -> bool {
        self.clean_findings == 0 && self.missed.is_empty() && self.violations.is_empty()
    }
}

fn workload_cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.3,
        figure1_chains: 1,
        ..Default::default()
    }
}

/// Reconcile the session (sweep edit-invalidated records until the
/// engine reports none) and audit. Returns the number of findings.
fn audit_reconciled(
    session: &mut Session,
    cfg: &AuditConfig,
    label: &str,
    outcome: &mut AuditSweepOutcome,
) {
    for _ in 0..3 {
        if session.find_unsafe().is_empty() {
            break;
        }
        session.remove_unsafe(Strategy::Regional);
    }
    if !session.find_unsafe().is_empty() {
        outcome
            .violations
            .push(format!("{label}: session refused to reconcile"));
        return;
    }
    let report = audit_session(session, cfg);
    outcome.clean_audits += 1;
    outcome.clean_findings += report.findings.len() as u64;
    for f in &report.findings {
        outcome.violations.push(format!(
            "{label}: clean-state finding: {}",
            f.render_human()
        ));
    }
}

/// Phase 1: seeded apply/undo/edit workloads audited at every
/// reconciled step boundary.
fn clean_phase(seed: u64, steps: usize, outcome: &mut AuditSweepOutcome) {
    let cfg = workload_cfg();
    let mut session = Session::new(crate::gen_program(seed, &cfg));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1EA);
    let mut audit_cfg = AuditConfig {
        pristine: true,
        ..AuditConfig::default()
    };
    audit_reconciled(
        &mut session,
        &audit_cfg,
        &format!("seed {seed} initial"),
        outcome,
    );
    for step in 0..steps {
        match rng.gen_range(0..9) {
            0..=4 => {
                let opps = session.find_all();
                if opps.is_empty() {
                    continue;
                }
                let opp = opps[rng.gen_range(0..opps.len())].clone();
                let _ = session.apply(&opp);
            }
            5..=7 => {
                let Some(id) = session.history.last_active() else {
                    continue;
                };
                match session.undo(id, Strategy::Regional) {
                    Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
                    Err(e) => {
                        outcome
                            .violations
                            .push(format!("seed {seed} step {step}: undo failed: {e}"));
                    }
                }
            }
            _ => {
                let edit = gen_edit(&session, rng.gen());
                if session.edit(&edit).is_ok() {
                    audit_cfg.pristine = false;
                }
            }
        }
        audit_reconciled(
            &mut session,
            &audit_cfg,
            &format!("seed {seed} step {step}"),
            outcome,
        );
    }
}

/// One poison: a label, a corruption, and the lint codes of which at
/// least one must fire.
struct Poison {
    label: &'static str,
    expect: &'static [&'static str],
    corrupt: fn(&mut Session) -> bool,
}

const POISONS: &[Poison] = &[
    Poison {
        label: "record marked undone with its actions still logged",
        expect: &["PV006"],
        corrupt: |s| {
            let Some(id) = s.history.last_active() else {
                return false;
            };
            match s.history.get_mut(id) {
                Ok(rec) => {
                    rec.state = XformState::Undone;
                    true
                }
                Err(_) => false,
            }
        },
    },
    Poison {
        label: "action dropped from the log",
        expect: &["PV007"],
        corrupt: |s| s.log.actions.pop().is_some(),
    },
    Poison {
        label: "orphan action with a future stamp",
        expect: &["PV004"],
        corrupt: |s| {
            let Some(first) = s.log.actions.first() else {
                return false;
            };
            let kind = first.kind.clone();
            let stamp = Stamp(s.log.next_stamp().0 + 3);
            s.log.actions.push(StampedAction { stamp, kind });
            true
        },
    },
    Poison {
        label: "stamp at or above the allocator",
        expect: &["PV010"],
        corrupt: |s| {
            let Some(first) = s.log.actions.first() else {
                return false;
            };
            let kind = first.kind.clone();
            let stamp = s.log.next_stamp();
            s.log.actions.push(StampedAction { stamp, kind });
            true
        },
    },
    Poison {
        label: "duplicated log entry",
        expect: &["PV005"],
        corrupt: |s| {
            let Some(first) = s.log.actions.first() else {
                return false;
            };
            let dup = first.clone();
            s.log.actions.push(dup);
            true
        },
    },
    Poison {
        label: "stale position index in the representation",
        expect: &["PV003"],
        corrupt: |s| {
            let Some(&key) = s.rep.pos.keys().next() else {
                return false;
            };
            std::sync::Arc::make_mut(&mut s.rep).pos.remove(&key);
            true
        },
    },
    Poison {
        label: "dangling statement id in a logged action",
        expect: &["PV002"],
        corrupt: |s| {
            for a in s.log.actions.iter_mut() {
                let slot = match &mut a.kind {
                    ActionKind::Add { stmt, .. }
                    | ActionKind::Delete { stmt, .. }
                    | ActionKind::Move { stmt, .. }
                    | ActionKind::ModifyHeader { stmt, .. } => stmt,
                    ActionKind::Copy { copy, .. } => copy,
                    ActionKind::ModifyExpr { .. } => continue,
                };
                *slot = StmtId(u32::MAX - 1);
                return true;
            }
            false
        },
    },
    Poison {
        label: "unlogged constant flip in the program",
        expect: &["PV202", "PV003"],
        corrupt: |s| {
            for stmt in s.prog.attached_stmts() {
                if let StmtKind::Assign { value, .. } = s.prog.stmt(stmt).kind {
                    if let ExprKind::Const(v) = s.prog.expr(value).kind {
                        s.prog.replace_expr_kind(value, ExprKind::Const(v ^ 1));
                        return true;
                    }
                }
            }
            false
        },
    },
    Poison {
        label: "annotated statement detached behind the log's back",
        expect: &["PV008"],
        corrupt: |s| {
            let target = s
                .log
                .annotations()
                .into_iter()
                .find_map(|(node, tags)| match node {
                    NodeRef::Stmt(stmt)
                        if s.prog.is_live(stmt)
                            && !tags.iter().any(|(_, t)| *t == ActionTag::Del) =>
                    {
                        Some(stmt)
                    }
                    _ => None,
                });
            match target {
                Some(stmt) => s.prog.detach(stmt).is_ok(),
                None => false,
            }
        },
    },
];

/// Phase 2: every poison against a prepared pristine session.
fn poison_phase(seed: u64, max: usize, outcome: &mut AuditSweepOutcome) {
    let prepared = prepare(seed, &workload_cfg(), max);
    let base = prepared.session;
    if base.history.records.is_empty() {
        return;
    }
    let audit_cfg = AuditConfig {
        pristine: true,
        ..AuditConfig::default()
    };
    for poison in POISONS {
        let mut fork = base.clone();
        if !(poison.corrupt)(&mut fork) {
            continue; // poison not expressible on this session shape
        }
        outcome.poisons += 1;
        let report = audit_session(&fork, &audit_cfg);
        let hit = report
            .findings
            .iter()
            .any(|f| poison.expect.contains(&f.code));
        if hit {
            outcome.detected += 1;
        } else {
            outcome.missed.push(format!(
                "seed {seed}: {} (expected one of {:?}, audit said: {})",
                poison.label,
                poison.expect,
                if report.is_clean() {
                    "clean".to_string()
                } else {
                    report.render_human()
                }
            ));
        }
    }
}

/// Phase 3: induced mid-cascade rollbacks must leave nothing for an
/// independent observer to find.
fn fault_phase(seed: u64, max: usize, outcome: &mut AuditSweepOutcome) {
    let prepared = prepare(seed, &workload_cfg(), max);
    let base = prepared.session;
    let audit_cfg = AuditConfig {
        pristine: true,
        ..AuditConfig::default()
    };
    let plans = [
        FaultPlan::nth_inverse_action(1),
        FaultPlan::nth_safety_check(1),
        FaultPlan::nth_rebuild(1),
    ];
    for &target in &prepared.applied {
        for (i, plan) in plans.iter().enumerate() {
            let mut fork = base.clone();
            fork.arm_faults(*plan);
            let label = format!("seed {seed} faulted undo {target} plan #{i}");
            match fork.undo(target, Strategy::Regional) {
                Err(UndoError::RolledBack { .. }) | Ok(_) => {
                    outcome.fault_trials += 1;
                    let report = audit_session(&fork, &audit_cfg);
                    for f in &report.findings {
                        outcome.violations.push(format!(
                            "{label}: post-rollback finding: {}",
                            f.render_human()
                        ));
                    }
                }
                Err(UndoError::AlreadyUndone(_)) => {}
                Err(e) => {
                    outcome
                        .violations
                        .push(format!("{label}: unexpected undo error: {e}"));
                }
            }
        }
    }
}

/// Run the full audit sweep over `count` seeds starting at `seed`, with
/// up to `max` prepared transformations and `steps` clean-phase steps
/// per seed.
pub fn sweep_audit(seed: u64, count: usize, steps: usize, max: usize) -> AuditSweepOutcome {
    let mut outcome = AuditSweepOutcome::default();
    for i in 0..count {
        let s = seed + i as u64;
        outcome.seeds += 1;
        clean_phase(s, steps, &mut outcome);
        poison_phase(s, max, &mut outcome);
        fault_phase(s, max, &mut outcome);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_on_small_run() {
        let o = sweep_audit(3, 2, 10, 6);
        assert!(
            o.passed(),
            "audit sweep failed:\nmissed: {:?}\nviolations: {:?}",
            o.missed,
            o.violations
        );
        assert!(o.clean_audits > 0);
        assert!(o.poisons > 0);
        assert!((o.detection_rate() - 1.0).abs() < f64::EPSILON);
    }
}

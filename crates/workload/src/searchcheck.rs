//! `searchcheck`: the fork-oracle differential sweep for the stochastic
//! search, runnable at reduced scale in CI.
//!
//! Two [`Search`] instances walk the *same* seeded move sequence over
//! identically generated sessions: one rejects by undoing
//! ([`RejectMode::UndoReject`]), the other builds every candidate in a fork
//! and discards rejected forks ([`RejectMode::ForkOracle`]) — it never
//! undoes. Because both share one step implementation and one RNG draw
//! discipline, the runs must agree move-for-move: same step kinds, same
//! move-log lines, and — after every rejected move and at termination —
//! same program source, same active-history length, same structural digest,
//! same cost. Any disagreement means the Figure-4 undo (or its checkpoint
//! fallback) failed to restore the pre-apply state, which is exactly the
//! paper's claim under test.

use crate::search::{search_session, RejectMode};
use crate::search::{Search, SearchCfg, StepKind};
use std::fmt::Write as _;
use std::time::Instant;

/// Result of one lockstep differential run.
pub struct SearchCheckOutcome {
    /// Seed swept.
    pub seed: u64,
    /// Proposals walked by each loop.
    pub proposed: u64,
    /// Moves accepted (identical in both loops when the run agrees).
    pub accepted: u64,
    /// Moves rejected.
    pub rejected: u64,
    /// Rejects that fell back to checkpoint rollback in the undo loop.
    pub rollback_rejects: u64,
    /// Cost trajectory: (initial, best).
    pub initial_cost: u64,
    /// Best cost reached.
    pub best_cost: u64,
    /// Undo-loop throughput, proposals per second.
    pub moves_per_sec: f64,
    /// First few disagreements between the loops (empty = green).
    pub mismatches: Vec<String>,
    /// Human-readable report.
    pub report: String,
}

impl SearchCheckOutcome {
    /// Green iff the loops agreed everywhere and the search made progress.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.accepted >= 1
    }
}

const MAX_MISMATCHES: usize = 5;

/// Step the undo-reject loop and the fork oracle in lockstep under one
/// seed, comparing after every move.
pub fn run(seed: u64, moves: u64) -> SearchCheckOutcome {
    let cfg = SearchCfg {
        seed,
        moves,
        ..Default::default()
    };
    run_cfg(&cfg)
}

/// [`run`] with full control over the search shape.
pub fn run_cfg(cfg: &SearchCfg) -> SearchCheckOutcome {
    let mut undo_loop = Search::new(search_session(cfg), cfg.clone(), RejectMode::UndoReject);
    let mut oracle = Search::new(search_session(cfg), cfg.clone(), RejectMode::ForkOracle);
    let mut mismatches: Vec<String> = Vec::new();
    let t0 = Instant::now();
    let mut undo_elapsed_ns = 0u64;
    loop {
        let u0 = Instant::now();
        let a = undo_loop.step();
        undo_elapsed_ns += u0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let b = oracle.step();
        let m = undo_loop.outcome().proposed;
        if a != b && mismatches.len() < MAX_MISMATCHES {
            mismatches.push(format!("move {m}: step kind {a:?} vs oracle {b:?}"));
        }
        if undo_loop.last_log() != oracle.last_log() && mismatches.len() < MAX_MISMATCHES {
            mismatches.push(format!(
                "move {m}: log {:?} vs oracle {:?}",
                undo_loop.last_log(),
                oracle.last_log()
            ));
        }
        // After a rejected move the undo must have restored exactly the
        // state the oracle never left; compare the full structural state.
        let terminal = matches!(a, StepKind::Budget | StepKind::Plateaued);
        if matches!(a, StepKind::Rejected) || terminal {
            compare_states(&undo_loop, &oracle, m, &mut mismatches);
        }
        if terminal || mismatches.len() >= MAX_MISMATCHES {
            break;
        }
    }
    let wall = t0.elapsed();
    let out_a = undo_loop.finish();
    let out_b = oracle.finish();
    if out_a.accepted_moves != out_b.accepted_moves && mismatches.len() < MAX_MISMATCHES {
        mismatches.push(format!(
            "accepted sets differ: {} vs oracle {}",
            out_a.accepted_moves.len(),
            out_b.accepted_moves.len()
        ));
    }
    let moves_per_sec = if undo_elapsed_ns == 0 {
        0.0
    } else {
        out_a.proposed as f64 * 1e9 / undo_elapsed_ns as f64
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "searchcheck seed={} proposed={} accepted={} rejected={} (undo {} / rollback {}) \
         no-opp={} restarts={} cost {} -> {} wall={:?}",
        out_a.seed,
        out_a.proposed,
        out_a.accepted,
        out_a.rejected,
        out_a.undo_rejects,
        out_a.rollback_rejects,
        out_a.no_opportunity,
        out_a.restarts,
        out_a.initial_cost,
        out_a.best_cost,
        wall,
    );
    let _ = writeln!(
        report,
        "undo-loop throughput: {moves_per_sec:.0} moves/sec (floor sanity: reduced-scale \
         CI runs are expected well above 1000)",
    );
    for mm in &mismatches {
        let _ = writeln!(report, "MISMATCH {mm}");
    }
    if out_a.output_divergences > 0 && mismatches.len() < MAX_MISMATCHES {
        mismatches.push(format!(
            "{} candidate(s) diverged from the baseline output stream",
            out_a.output_divergences
        ));
    }
    SearchCheckOutcome {
        seed: out_a.seed,
        proposed: out_a.proposed,
        accepted: out_a.accepted,
        rejected: out_a.rejected,
        rollback_rejects: out_a.rollback_rejects,
        initial_cost: out_a.initial_cost,
        best_cost: out_a.best_cost,
        moves_per_sec,
        mismatches,
        report,
    }
}

fn compare_states(a: &Search, b: &Search, m: u64, mismatches: &mut Vec<String>) {
    if mismatches.len() >= MAX_MISMATCHES {
        return;
    }
    let (sa, sb) = (a.session().source(), b.session().source());
    if sa != sb {
        mismatches.push(format!(
            "move {m}: program source diverged:\n{sa}--- vs oracle ---\n{sb}"
        ));
        return;
    }
    let (ha, hb) = (
        a.session().history.active_len(),
        b.session().history.active_len(),
    );
    if ha != hb {
        mismatches.push(format!("move {m}: active history {ha} vs oracle {hb}"));
    }
    if a.cur_cost() != b.cur_cost() {
        mismatches.push(format!(
            "move {m}: cost {} vs oracle {}",
            a.cur_cost(),
            b.cur_cost()
        ));
    }
    if a.digest() != b.digest() {
        mismatches.push(format!(
            "move {m}: digest {:016x} vs oracle {:016x}",
            a.digest(),
            b.digest()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_sweep_is_green() {
        let out = run(1, 300);
        assert!(out.passed(), "{}", out.report);
        assert!(out.rejected > 0, "a 300-move walk should reject something");
    }
}

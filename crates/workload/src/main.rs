//! Workload driver binary.
//!
//! ```text
//! pivot-workload faults [--seed N] [--max N]
//! pivot-workload incrcheck [--seed N] [--count N] [--max N]
//! pivot-workload parcheck [--seed N] [--count N] [--max N]
//! ```
//!
//! `faults` runs the deterministic fault-injection sweep
//! ([`pivot_workload::faults`]) and exits non-zero if any induced rollback
//! violated a transactional invariant. `incrcheck` drives seeded workloads
//! in `RepMode::Checked` ([`pivot_workload::incrcheck`]), panicking on any
//! batch/incremental divergence and reporting dirty-block ratios.
//! `parcheck` runs the same seeded workloads across worker counts and
//! scripted schedules ([`pivot_workload::parcheck`]) and exits non-zero on
//! any behavioral divergence from the one-thread oracle. `auditcheck`
//! runs the independent static auditor ([`pivot_workload::auditcheck`])
//! over clean, poisoned, and fault-rolled-back sessions, and exits
//! non-zero on any clean-state finding or undetected poison.

use std::process::ExitCode;

const USAGE: &str = "usage: pivot-workload <command>

commands:
  faults [--seed N] [--max N]  sweep deterministic faults over seeded
                               workloads and check rollback invariants
                               (defaults: --seed 7 --max 10)
  incrcheck [--seed N] [--count N] [--max N]
                               drive seeded apply/undo/edit workloads in
                               Checked mode (incremental update verified
                               against a batch rebuild at every step) and
                               report dirty-block ratios
                               (defaults: --seed 0 --count 8 --max 8)
  parcheck [--seed N] [--count N] [--max N]
                               run seeded apply/undo/edit workloads at
                               2/4/8 worker threads under scripted
                               schedules and compare full behavioral
                               fingerprints against the 1-thread oracle
                               (defaults: --seed 0 --count 6 --max 10)
  auditcheck [--seed N] [--count N] [--steps N] [--max N]
                               run the independent static auditor over
                               seeded workloads: reconciled states must
                               audit clean, every poisoned fork must be
                               detected, and induced rollbacks must
                               leave nothing to find
                               (defaults: --seed 0 --count 4 --steps 20
                               --max 8)
  cowcheck [--seed N] [--iters N] [--gate X] [--out PATH]
                               measure shared (copy-on-write) checkpoints
                               against the eager deep-copy baseline over
                               a workload size ladder, verify rollback
                               exactness, and fail unless the largest
                               workload's checkpoint is at least X times
                               cheaper (defaults: --seed 49344 --iters 64
                               --gate 10)
  serve --journal-dir DIR [--addr A] [--scrape-addr A] [--max-conns N]
        [--read-timeout-ms N] [--request-deadline-ms N]
        [--checkpoint-every N]
                               run the session-serving daemon until
                               SIGTERM/SIGINT, then drain gracefully
                               (checkpointing every open session)
  servecheck [--seed N] [--sessions N] [--rounds N] [--ops N]
             [--bench-out PATH]
                               crash-recovery soak: spawn the daemon,
                               interleave sessions, kill it at random
                               byte/packet and transaction boundaries,
                               restart, recover, and reconcile every
                               fingerprint against single-session
                               replay; then check overload degradation
                               (defaults: --seed 24142 --sessions 64
                               --rounds 4 --ops 400)
  servebench [--seed N] [--out PATH]
                               measure how journal compaction bounds
                               recovery time and journal size
  search [--seed N] [--moves N] [--temp X] [--fragments N]
                               run the stochastic (simulated-annealing)
                               search over a seeded workload, rejecting
                               candidates via undo, and print the cost
                               trajectory and throughput
                               (defaults: --seed 0 --moves 10000
                               --temp 64 --fragments 10)
  searchcheck [--seed N] [--moves N]
                               reduced-scale CI gate: walk the same
                               seeded move sequence through the
                               undo-reject loop and a fork-and-discard
                               oracle in lockstep, failing on any state
                               divergence or if nothing is accepted
                               (defaults: --seed 1 --moves 3000)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("faults") => {
            let mut seed = 7u64;
            let mut max = 10usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("faults: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let outcome = pivot_workload::faults::sweep_faults(seed, max);
            println!(
                "fault sweep: {} trials, {} rollbacks, {} survived, {} violations",
                outcome.trials,
                outcome.rollbacks,
                outcome.survived,
                outcome.violations.len()
            );
            if outcome.passed() {
                ExitCode::SUCCESS
            } else {
                for v in &outcome.violations {
                    eprintln!("violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Some("incrcheck") => {
            let mut seed = 0u64;
            let mut count = 8usize;
            let mut max = 8usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--count" => value(&mut rest, "--count").map(|v| count = v as usize),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("incrcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::incrcheck::sweep_incr(seed, count, max);
            println!(
                "incrcheck: {} seeds, {} ops, {} incremental updates, {} fallbacks \
                 ({:.0}% incremental), mean dirty-block ratio {:.2}",
                o.seeds,
                o.operations,
                o.incremental_updates,
                o.fallbacks,
                o.incremental_share() * 100.0,
                o.dirty_ratio()
            );
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                eprintln!("incrcheck: the incremental path never ran — sweep proves nothing");
                ExitCode::FAILURE
            }
        }
        Some("parcheck") => {
            let mut seed = 0u64;
            let mut count = 6usize;
            let mut max = 10usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--count" => value(&mut rest, "--count").map(|v| count = v as usize),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("parcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::parcheck::sweep_par(seed, count, max);
            println!(
                "parcheck: {} seeds x {} parallel configs, {} divergences",
                o.seeds,
                o.configs,
                o.mismatches.len()
            );
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                for m in &o.mismatches {
                    eprintln!("divergence: {m}");
                }
                ExitCode::FAILURE
            }
        }
        Some("auditcheck") => {
            let mut seed = 0u64;
            let mut count = 4usize;
            let mut steps = 20usize;
            let mut max = 8usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--count" => value(&mut rest, "--count").map(|v| count = v as usize),
                    "--steps" => value(&mut rest, "--steps").map(|v| steps = v as usize),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("auditcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::auditcheck::sweep_audit(seed, count, steps, max);
            println!(
                "auditcheck: {} seeds, {} clean audits ({} findings), \
                 {} poisons ({:.0}% detected), {} fault trials",
                o.seeds,
                o.clean_audits,
                o.clean_findings,
                o.poisons,
                o.detection_rate() * 100.0,
                o.fault_trials
            );
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                for m in &o.missed {
                    eprintln!("missed poison: {m}");
                }
                for v in &o.violations {
                    eprintln!("violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Some("cowcheck") => {
            let mut seed = 0xC0C0u64;
            let mut iters = 64usize;
            let mut gate = 10.0f64;
            let mut out_path: Option<String> = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--iters" => value(&mut rest, "--iters").map(|v| iters = v as usize),
                    "--gate" => rest
                        .next()
                        .ok_or_else(|| "--gate needs a value".to_string())
                        .and_then(|v| v.parse::<f64>().map_err(|e| format!("--gate: {e}")))
                        .map(|v| gate = v),
                    "--out" => rest
                        .next()
                        .map(|v| out_path = Some(v.clone()))
                        .ok_or_else(|| "--out needs a value".to_string()),
                    other => Err(format!("cowcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::cowcheck::sweep_cow(seed, iters);
            for r in &o.rows {
                println!(
                    "cowcheck: {} fragments ({} stmts): deep {} ns, cow {} ns \
                     ({:.1}x), rollback exact: {}",
                    r.fragments,
                    r.stmts,
                    r.deep_ns,
                    r.cow_ns,
                    r.speedup(),
                    r.rollback_exact
                );
            }
            if let Some(path) = out_path {
                let doc = pivot_workload::cowcheck::render_cow_json(&o, gate);
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("cowcheck: write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("cowcheck: wrote {path}");
            }
            if o.passed(gate) {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "cowcheck: gate failed — large-workload speedup {:.1}x < {:.1}x \
                     (or inexact rollback)",
                    o.large_speedup(),
                    gate
                );
                ExitCode::FAILURE
            }
        }
        Some("serve") => {
            let mut cfg = pivot_serve::ServeConfig::new("pivot-serve-journals");
            let mut journal_dir_set = false;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                let number = |it: &mut std::slice::Iter<String>, flag: &str| {
                    value(it, flag)
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--journal-dir" => value(&mut rest, "--journal-dir").map(|v| {
                        cfg.journal_dir = v.into();
                        journal_dir_set = true;
                    }),
                    "--addr" => value(&mut rest, "--addr").map(|v| cfg.tcp_addr = v),
                    "--scrape-addr" => {
                        value(&mut rest, "--scrape-addr").map(|v| cfg.scrape_addr = Some(v))
                    }
                    "--uds" => value(&mut rest, "--uds").map(|v| cfg.uds_path = Some(v.into())),
                    "--max-conns" => {
                        number(&mut rest, "--max-conns").map(|v| cfg.max_conns = v as usize)
                    }
                    "--read-timeout-ms" => {
                        number(&mut rest, "--read-timeout-ms").map(|v| cfg.read_timeout_ms = v)
                    }
                    "--request-deadline-ms" => number(&mut rest, "--request-deadline-ms")
                        .map(|v| cfg.request_deadline_ms = v),
                    "--checkpoint-every" => {
                        number(&mut rest, "--checkpoint-every").map(|v| cfg.checkpoint_every = v)
                    }
                    other => Err(format!("serve: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            if !journal_dir_set {
                eprintln!("serve: --journal-dir is required");
                return ExitCode::FAILURE;
            }
            cfg = cfg.from_env();
            match pivot_serve::run(cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("servecheck") => {
            let mut cfg = pivot_workload::servecheck::SoakCfg::default();
            let mut bench_out: Option<String> = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| cfg.seed = v),
                    "--sessions" => {
                        value(&mut rest, "--sessions").map(|v| cfg.sessions = v as usize)
                    }
                    "--rounds" => value(&mut rest, "--rounds").map(|v| cfg.rounds = v as usize),
                    "--ops" => value(&mut rest, "--ops").map(|v| cfg.ops_per_round = v as usize),
                    "--bench-out" => rest
                        .next()
                        .map(|v| bench_out = Some(v.clone()))
                        .ok_or_else(|| "--bench-out needs a value".to_string()),
                    other => Err(format!("servecheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::servecheck::soak(&cfg);
            println!(
                "servecheck: {} sessions x {} rounds, {} ops acked, {} crashes, \
                 {} recoveries ({} from checkpoint), {} torn tails, \
                 {} torn-checkpoint probes, {} audits ({} findings), \
                 {} overload rejections, {} timeout replies \
                 (uds: {} / {}), {} mismatches",
                o.sessions,
                o.rounds,
                o.ops_acked,
                o.crashes,
                o.recoveries,
                o.checkpoint_recoveries,
                o.torn_tails,
                o.torn_checkpoint_probes,
                o.audits,
                o.audit_findings,
                o.overload_rejections,
                o.timeout_replies,
                o.uds_overload_rejections,
                o.uds_timeout_replies,
                o.mismatches.len()
            );
            if let Some(path) = bench_out {
                match pivot_workload::servecheck::compaction_bench(cfg.seed, &[64, 256, 1024]) {
                    Ok(rows) => {
                        let doc = pivot_workload::servecheck::render_bench_json(&o, &rows);
                        if let Err(e) = std::fs::write(&path, doc) {
                            eprintln!("servecheck: write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("servecheck: wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("servecheck: bench: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                for m in &o.mismatches {
                    eprintln!("mismatch: {m}");
                }
                if o.overload_rejections == 0 {
                    eprintln!("servecheck: overload phase produced no `overloaded` replies");
                }
                if o.timeout_replies == 0 {
                    eprintln!("servecheck: slow-loris client got no `timeout` reply");
                }
                if !o.uds_ok() {
                    eprintln!(
                        "servecheck: unix-socket overload phase incomplete \
                         ({} rejections, {} timeouts)",
                        o.uds_overload_rejections, o.uds_timeout_replies
                    );
                }
                ExitCode::FAILURE
            }
        }
        Some("servebench") => {
            let mut seed = 0x5EEDu64;
            let mut out_path: Option<String> = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let parsed = match a.as_str() {
                    "--seed" => rest
                        .next()
                        .ok_or_else(|| "--seed needs a value".to_string())
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
                        .map(|v| seed = v),
                    "--out" => rest
                        .next()
                        .map(|v| out_path = Some(v.clone()))
                        .ok_or_else(|| "--out needs a value".to_string()),
                    other => Err(format!("servebench: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            match pivot_workload::servecheck::compaction_bench(seed, &[64, 256, 1024]) {
                Ok(rows) => {
                    for r in &rows {
                        println!(
                            "servebench: {} ops: full {} B / {:.2} ms, \
                             compacted {} B / {:.2} ms",
                            r.ops,
                            r.full_bytes,
                            r.full_recover_ns as f64 / 1e6,
                            r.compacted_bytes,
                            r.compacted_recover_ns as f64 / 1e6
                        );
                    }
                    if let Some(path) = out_path {
                        let o = pivot_workload::servecheck::SoakOutcome::default();
                        let doc = pivot_workload::servecheck::render_bench_json(&o, &rows);
                        if let Err(e) = std::fs::write(&path, doc) {
                            eprintln!("servebench: write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("servebench: wrote {path}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("servebench: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("search") => {
            let mut cfg = pivot_workload::search::SearchCfg::default();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| cfg.seed = v),
                    "--moves" => value(&mut rest, "--moves").map(|v| cfg.moves = v),
                    "--temp" => rest
                        .next()
                        .ok_or_else(|| "--temp needs a value".to_string())
                        .and_then(|v| v.parse::<f64>().map_err(|e| format!("--temp: {e}")))
                        .map(|v| cfg.temp = v),
                    "--fragments" => {
                        value(&mut rest, "--fragments").map(|v| cfg.fragments = v as usize)
                    }
                    other => Err(format!("search: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::search::run_search(&cfg);
            println!(
                "search: seed {} proposed {} accepted {} ({} uphill) rejected {} \
                 (undo {} / rollback {}) no-opp {} restarts {} cost {} -> {} \
                 ({:.0} moves/sec)",
                o.seed,
                o.proposed,
                o.accepted,
                o.uphill,
                o.rejected,
                o.undo_rejects,
                o.rollback_rejects,
                o.no_opportunity,
                o.restarts,
                o.initial_cost,
                o.final_cost,
                o.moves_per_sec()
            );
            if o.output_divergences == 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "search: {} candidate(s) changed the output stream — semantics bug",
                    o.output_divergences
                );
                ExitCode::FAILURE
            }
        }
        Some("searchcheck") => {
            let mut seed = 1u64;
            let mut moves = 3_000u64;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--moves" => value(&mut rest, "--moves").map(|v| moves = v),
                    other => Err(format!("searchcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::searchcheck::run(seed, moves);
            print!("{}", o.report);
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                if o.accepted == 0 {
                    eprintln!("searchcheck: no move was accepted — the walk proves nothing");
                }
                ExitCode::FAILURE
            }
        }
        Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

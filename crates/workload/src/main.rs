//! Workload driver binary.
//!
//! ```text
//! pivot-workload faults [--seed N] [--max N]
//! pivot-workload incrcheck [--seed N] [--count N] [--max N]
//! pivot-workload parcheck [--seed N] [--count N] [--max N]
//! ```
//!
//! `faults` runs the deterministic fault-injection sweep
//! ([`pivot_workload::faults`]) and exits non-zero if any induced rollback
//! violated a transactional invariant. `incrcheck` drives seeded workloads
//! in `RepMode::Checked` ([`pivot_workload::incrcheck`]), panicking on any
//! batch/incremental divergence and reporting dirty-block ratios.
//! `parcheck` runs the same seeded workloads across worker counts and
//! scripted schedules ([`pivot_workload::parcheck`]) and exits non-zero on
//! any behavioral divergence from the one-thread oracle. `auditcheck`
//! runs the independent static auditor ([`pivot_workload::auditcheck`])
//! over clean, poisoned, and fault-rolled-back sessions, and exits
//! non-zero on any clean-state finding or undetected poison.

use std::process::ExitCode;

const USAGE: &str = "usage: pivot-workload <command>

commands:
  faults [--seed N] [--max N]  sweep deterministic faults over seeded
                               workloads and check rollback invariants
                               (defaults: --seed 7 --max 10)
  incrcheck [--seed N] [--count N] [--max N]
                               drive seeded apply/undo/edit workloads in
                               Checked mode (incremental update verified
                               against a batch rebuild at every step) and
                               report dirty-block ratios
                               (defaults: --seed 0 --count 8 --max 8)
  parcheck [--seed N] [--count N] [--max N]
                               run seeded apply/undo/edit workloads at
                               2/4/8 worker threads under scripted
                               schedules and compare full behavioral
                               fingerprints against the 1-thread oracle
                               (defaults: --seed 0 --count 6 --max 10)
  auditcheck [--seed N] [--count N] [--steps N] [--max N]
                               run the independent static auditor over
                               seeded workloads: reconciled states must
                               audit clean, every poisoned fork must be
                               detected, and induced rollbacks must
                               leave nothing to find
                               (defaults: --seed 0 --count 4 --steps 20
                               --max 8)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("faults") => {
            let mut seed = 7u64;
            let mut max = 10usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("faults: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let outcome = pivot_workload::faults::sweep_faults(seed, max);
            println!(
                "fault sweep: {} trials, {} rollbacks, {} survived, {} violations",
                outcome.trials,
                outcome.rollbacks,
                outcome.survived,
                outcome.violations.len()
            );
            if outcome.passed() {
                ExitCode::SUCCESS
            } else {
                for v in &outcome.violations {
                    eprintln!("violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Some("incrcheck") => {
            let mut seed = 0u64;
            let mut count = 8usize;
            let mut max = 8usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--count" => value(&mut rest, "--count").map(|v| count = v as usize),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("incrcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::incrcheck::sweep_incr(seed, count, max);
            println!(
                "incrcheck: {} seeds, {} ops, {} incremental updates, {} fallbacks \
                 ({:.0}% incremental), mean dirty-block ratio {:.2}",
                o.seeds,
                o.operations,
                o.incremental_updates,
                o.fallbacks,
                o.incremental_share() * 100.0,
                o.dirty_ratio()
            );
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                eprintln!("incrcheck: the incremental path never ran — sweep proves nothing");
                ExitCode::FAILURE
            }
        }
        Some("parcheck") => {
            let mut seed = 0u64;
            let mut count = 6usize;
            let mut max = 10usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--count" => value(&mut rest, "--count").map(|v| count = v as usize),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("parcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::parcheck::sweep_par(seed, count, max);
            println!(
                "parcheck: {} seeds x {} parallel configs, {} divergences",
                o.seeds,
                o.configs,
                o.mismatches.len()
            );
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                for m in &o.mismatches {
                    eprintln!("divergence: {m}");
                }
                ExitCode::FAILURE
            }
        }
        Some("auditcheck") => {
            let mut seed = 0u64;
            let mut count = 4usize;
            let mut steps = 20usize;
            let mut max = 8usize;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let value = |it: &mut std::slice::Iter<String>, flag: &str| {
                    it.next()
                        .ok_or_else(|| format!("{flag} needs a value"))
                        .and_then(|v| v.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
                };
                let parsed = match a.as_str() {
                    "--seed" => value(&mut rest, "--seed").map(|v| seed = v),
                    "--count" => value(&mut rest, "--count").map(|v| count = v as usize),
                    "--steps" => value(&mut rest, "--steps").map(|v| steps = v as usize),
                    "--max" => value(&mut rest, "--max").map(|v| max = v as usize),
                    other => Err(format!("auditcheck: unknown option `{other}`")),
                };
                if let Err(e) = parsed {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let o = pivot_workload::auditcheck::sweep_audit(seed, count, steps, max);
            println!(
                "auditcheck: {} seeds, {} clean audits ({} findings), \
                 {} poisons ({:.0}% detected), {} fault trials",
                o.seeds,
                o.clean_audits,
                o.clean_findings,
                o.poisons,
                o.detection_rate() * 100.0,
                o.fault_trials
            );
            if o.passed() {
                ExitCode::SUCCESS
            } else {
                for m in &o.missed {
                    eprintln!("missed poison: {m}");
                }
                for v in &o.violations {
                    eprintln!("violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

//! Copy-on-write checkpoint regression gate.
//!
//! Measures [`Session::checkpoint`] (structural sharing: chunk-table
//! copies + refcount bumps) against [`Checkpoint::take_deep`] (the
//! pre-CoW eager whole-state copy) on seeded workloads of increasing
//! size, and verifies on every size that a checkpoint taken through the
//! shared path still rolls the session back to a bit-identical
//! fingerprint. The ratio between the two is hardware-independent enough
//! to gate in CI: if someone reintroduces an eager copy into the
//! checkpoint spine, the speedup collapses toward 1 and the gate fails.

use crate::{prepare, WorkloadCfg};
use pivot_undo::engine::Session;
use pivot_undo::snapshot::fingerprint;
use pivot_undo::txn::Checkpoint;
use pivot_undo::Strategy;
use std::time::Instant;

/// Measurements for one workload size.
#[derive(Clone, Debug)]
pub struct CowRow {
    /// Enabling fragments in the generated program.
    pub fragments: usize,
    /// Statements in the prepared program (size proxy).
    pub stmts: usize,
    /// Median eager deep-copy checkpoint time.
    pub deep_ns: u64,
    /// Median shared (production) checkpoint time.
    pub cow_ns: u64,
    /// Whether rollback through a shared checkpoint restored the exact
    /// pre-checkpoint fingerprint.
    pub rollback_exact: bool,
}

impl CowRow {
    /// deep / cow — how many times cheaper the shared checkpoint is.
    pub fn speedup(&self) -> f64 {
        if self.cow_ns == 0 {
            f64::INFINITY
        } else {
            self.deep_ns as f64 / self.cow_ns as f64
        }
    }
}

/// Aggregate result of a cowcheck run.
#[derive(Clone, Debug, Default)]
pub struct CowCheckOutcome {
    /// One row per workload size, smallest first.
    pub rows: Vec<CowRow>,
}

impl CowCheckOutcome {
    /// Speedup on the largest workload — the number the gate compares.
    pub fn large_speedup(&self) -> f64 {
        self.rows.last().map(CowRow::speedup).unwrap_or(0.0)
    }

    /// Pass iff every rollback was exact and the largest workload's
    /// checkpoint beat the eager baseline by at least `gate`.
    pub fn passed(&self, gate: f64) -> bool {
        !self.rows.is_empty()
            && self.rows.iter().all(|r| r.rollback_exact)
            && self.large_speedup() >= gate
    }
}

fn median_ns(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples.get(samples.len() / 2).copied().unwrap_or(0)
}

/// Checkpoint, mutate, rollback: the session must come back bit-identical.
fn rollback_exact(s: &mut Session, applied: &[pivot_undo::XformId]) -> bool {
    let fp0 = fingerprint(s);
    let cp = s.checkpoint();
    if let Some(&id) = applied.first() {
        // Any mutation will do; undo is the interesting one.
        let _ = s.undo(id, Strategy::Regional);
    }
    s.rollback(cp);
    fingerprint(s) == fp0
}

/// Measure one workload size.
fn measure(seed: u64, fragments: usize, iters: usize) -> CowRow {
    let cfg = WorkloadCfg {
        fragments,
        noise_ratio: 0.3,
        ..Default::default()
    };
    let mut p = prepare(seed ^ fragments as u64, &cfg, 32);

    // Warm both paths so first-touch allocator effects don't skew medians.
    for _ in 0..4 {
        drop(Checkpoint::take_deep(&p.session));
        drop(p.session.checkpoint());
    }

    let deep_ns = median_ns(
        (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                let cp = Checkpoint::take_deep(&p.session);
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                drop(cp);
                ns
            })
            .collect(),
    );
    let cow_ns = median_ns(
        (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                let cp = p.session.checkpoint();
                let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                drop(cp);
                ns
            })
            .collect(),
    );

    let stmts = p.session.prog.stmt_arena_len();
    let applied = p.applied.clone();
    CowRow {
        fragments,
        stmts,
        deep_ns,
        cow_ns,
        rollback_exact: rollback_exact(&mut p.session, &applied),
    }
}

/// Run the sweep over the standard size ladder.
pub fn sweep_cow(seed: u64, iters: usize) -> CowCheckOutcome {
    let rows = [8usize, 32, 128]
        .iter()
        .map(|&f| measure(seed, f, iters))
        .collect();
    CowCheckOutcome { rows }
}

/// Render the outcome as the `BENCH_cow.json` document.
pub fn render_cow_json(o: &CowCheckOutcome, gate: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"cow_checkpoint\",\n  \"rows\": [\n");
    for (i, r) in o.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fragments\": {}, \"stmts\": {}, \"deep_ns\": {}, \
             \"cow_ns\": {}, \"speedup\": {:.1}, \"rollback_exact\": {}}}{}\n",
            r.fragments,
            r.stmts,
            r.deep_ns,
            r.cow_ns,
            r.speedup(),
            r.rollback_exact,
            if i + 1 < o.rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"gate\": {:.1},\n  \"large_speedup\": {:.1},\n  \"passed\": {}\n}}\n",
        gate,
        o.large_speedup(),
        o.passed(gate)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_and_rolls_back_exactly() {
        let o = sweep_cow(0xC0C0, 16);
        assert_eq!(o.rows.len(), 3);
        for r in &o.rows {
            assert!(
                r.rollback_exact,
                "inexact rollback at {} fragments",
                r.fragments
            );
            assert!(r.deep_ns > 0 && r.cow_ns > 0);
        }
        // Sharing must win by a comfortable margin even on modest sizes;
        // CI gates the large size at 10x, tests stay conservative.
        assert!(
            o.large_speedup() >= 2.0,
            "shared checkpoint not meaningfully cheaper: {o:?}"
        );
        let json = render_cow_json(&o, 2.0);
        assert!(json.contains("\"bench\": \"cow_checkpoint\""));
        assert!(json.contains("\"passed\": true"));
    }
}

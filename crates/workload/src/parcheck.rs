//! Determinism sweep for the parallel kernels.
//!
//! Runs the same seeded apply/undo/edit script once on the sequential
//! oracle (one thread) and then across a grid of worker counts × scripted
//! schedules ([`pivot_undo::SchedScript`] perturbs per-task timing from a
//! seed, forcing different steal interleavings), comparing a full
//! behavioral fingerprint of every run against the oracle: program source
//! after build-up and after every undo, per-undo report counters,
//! provenance trees, the edit-invalidation screen, and the final source.
//! Any divergence is a determinism bug in `pivot-par` or its call sites.
//!
//! Exposed as `pivot-workload parcheck`, wired into CI next to the `faults`
//! and `incrcheck` sweeps.

use crate::{gen_edit, prepare_with_pool, WorkloadCfg};
use pivot_undo::{Pool, RepMode, SchedScript, Strategy, UndoError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Aggregate result of a parallel-determinism sweep.
#[derive(Debug, Default)]
pub struct ParCheckOutcome {
    /// Seeds driven.
    pub seeds: usize,
    /// Parallel configurations (threads × schedule seeds) compared per seed.
    pub configs: usize,
    /// Human-readable description of each fingerprint divergence (empty on
    /// a passing sweep).
    pub mismatches: Vec<String>,
}

impl ParCheckOutcome {
    /// Did every parallel run reproduce the sequential fingerprint?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.seeds > 0
    }
}

/// Run the canonical seeded script with the given pool and return its
/// behavioral fingerprint.
fn run_script(seed: u64, cfg: &WorkloadCfg, max: usize, pool: Pool) -> String {
    let mut fp = String::new();
    let mut p = prepare_with_pool(seed, cfg, max, RepMode::Batch, pool);
    let _ = writeln!(fp, "applied: {:?}", p.applied);
    let _ = writeln!(fp, "built:\n{}", p.session.source());
    let mut order = p.applied.clone();
    order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x9A7C));
    // Undo the first half in a shuffled independent order, one per request.
    let (solo, batch) = order.split_at(order.len() / 2);
    for &id in solo {
        match p.session.undo(id, Strategy::Regional) {
            Ok(r) => {
                let _ = writeln!(
                    fp,
                    "undo {id}: undone {:?} cand {} safety {} rev {} chases {} rebuilds {}",
                    r.undone,
                    r.candidates_considered,
                    r.safety_checks,
                    r.reversibility_checks,
                    r.affecting_chases,
                    r.rep_rebuilds
                );
            }
            Err(UndoError::AlreadyUndone(_)) => {
                let _ = writeln!(fp, "undo {id}: already undone");
            }
            Err(e) => {
                let _ = writeln!(fp, "undo {id}: error {e}");
            }
        }
        let _ = writeln!(fp, "{}", p.session.source());
    }
    // Undo the rest as one batch request (parallel planning phase).
    if !batch.is_empty() {
        match p.session.undo_batch(batch, Strategy::Regional) {
            Ok(out) => {
                for plan in &out.plans {
                    let _ = writeln!(
                        fp,
                        "plan {}: active {} reversible {} affecting {:?} affected {:?}",
                        plan.target, plan.active, plan.reversible, plan.affecting, plan.affected
                    );
                }
                let _ = writeln!(
                    fp,
                    "batch undone {:?} skipped {:?}",
                    out.undone(),
                    out.skipped
                );
            }
            Err(e) => {
                let _ = writeln!(fp, "batch error {e}");
            }
        }
        let _ = writeln!(fp, "{}", p.session.source());
    }
    for t in &p.session.explanations {
        let _ = writeln!(fp, "{}", t.render());
    }
    // Edit + screen + selective removal (parallel safety screen).
    let edit = gen_edit(&p.session, seed.wrapping_mul(977).wrapping_add(13));
    if p.session.edit(&edit).is_ok() {
        let _ = writeln!(fp, "unsafe: {:?}", p.session.find_unsafe());
        let inv = p.session.remove_unsafe(Strategy::Regional);
        let _ = writeln!(fp, "removed {:?} retired {:?}", inv.removed, inv.retired);
    }
    p.session.assert_consistent();
    let _ = writeln!(fp, "final:\n{}", p.session.source());
    fp
}

/// Drive `count` seeds starting at `seed0`, up to `max` transformations
/// each, comparing every (threads, schedule-seed) configuration against the
/// one-thread oracle.
pub fn sweep_par(seed0: u64, count: usize, max: usize) -> ParCheckOutcome {
    let cfg = WorkloadCfg {
        fragments: 8,
        noise_ratio: 0.3,
        figure1_chains: 1,
        ..Default::default()
    };
    let threads = [2usize, 4, 8];
    let sched_seeds = [0u64, 1, 2];
    let mut outcome = ParCheckOutcome {
        configs: threads.len() * sched_seeds.len(),
        ..Default::default()
    };
    for seed in seed0..seed0 + count as u64 {
        let oracle = run_script(seed, &cfg, max, Pool::new(1));
        for &t in &threads {
            for &ss in &sched_seeds {
                let pool = Pool::new(t).with_script(SchedScript::new(ss));
                let got = run_script(seed, &cfg, max, pool);
                if got != oracle {
                    outcome
                        .mismatches
                        .push(diff_summary(seed, t, ss, &oracle, &got));
                }
            }
        }
        outcome.seeds += 1;
    }
    outcome
}

/// First diverging fingerprint line, for the failure message.
fn diff_summary(seed: u64, threads: usize, sched: u64, oracle: &str, got: &str) -> String {
    let line = oracle
        .lines()
        .zip(got.lines())
        .position(|(a, b)| a != b)
        .map(|i| {
            format!(
                "line {}: oracle `{}` vs got `{}`",
                i + 1,
                oracle.lines().nth(i).unwrap_or(""),
                got.lines().nth(i).unwrap_or("")
            )
        })
        .unwrap_or_else(|| "fingerprints differ in length".to_owned());
    format!("seed {seed} threads {threads} sched {sched}: {line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_across_pools() {
        let o = sweep_par(11, 2, 8);
        assert_eq!(o.seeds, 2);
        assert!(o.passed(), "divergences: {:#?}", o.mismatches);
    }

    #[test]
    fn fingerprint_captures_behavior() {
        let cfg = WorkloadCfg {
            fragments: 6,
            figure1_chains: 1,
            ..Default::default()
        };
        let fp = run_script(3, &cfg, 6, Pool::new(1));
        assert!(fp.contains("applied:"));
        assert!(fp.contains("final:"));
    }
}

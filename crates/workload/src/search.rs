//! Stochastic search over the transformation catalog — undo as the reject
//! step.
//!
//! The paper's thesis is that undo is cheap and order-independent enough to
//! be used *casually*. This module takes that literally: a simulated-
//! annealing optimizer whose inner loop is propose (draw a random catalog
//! opportunity), score (interpreter step counts on seeded inputs,
//! [`pivot_lang::interp::run_counted`]), and — for the overwhelming majority
//! of moves — **reject by undoing** ([`Session::reject`], the Figure-4
//! algorithm with a checkpoint-rollback fallback). Every move exercises the
//! apply/undo hot path, so the loop's moves/sec is a standing regression
//! gate on the whole engine (`examples/profile_search.rs`,
//! `BENCH_search.json`).
//!
//! The same loop can run against a fork-and-discard oracle
//! ([`RejectMode::ForkOracle`]) that builds each candidate in a
//! [`Session::fork`] and simply drops rejected forks, never undoing.
//! Because both modes share one `step()` body (identical RNG draw sequence,
//! identical scoring and acceptance arithmetic), any divergence between
//! them — in program source, move log, active-history length, or digest —
//! is an undo defect, not a search artifact. The lockstep comparison lives
//! in [`crate::searchcheck`] and `tests/search_differential.rs`.
//!
//! Everything is deterministic under [`SearchCfg::seed`]: the move log and
//! accepted set are byte-identical across thread counts and rep modes
//! (asserted by the differential suite), which is what makes a stochastic
//! workload usable as a CI gate at all.

use pivot_lang::interp::{self, Limits};
use pivot_lang::Program;
use pivot_undo::engine::Session;
use pivot_undo::{Checkpoint, Strategy, ALL_KINDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Cost assigned to a candidate whose evaluation failed ([`interp::ExecError`]:
/// fuel exhaustion, division by zero introduced by a bug, …). The acceptance
/// rule treats it as an ordinary (astronomically bad) cost: the uphill delta
/// drives the Metropolis exponential to zero, so a failing candidate is
/// rejected rather than crashing the walk.
pub const WORST_COST: u64 = u64::MAX;

/// Search shape. Plain data, clonable, fully determines a run together with
/// the starting session.
#[derive(Clone, Debug)]
pub struct SearchCfg {
    /// RNG seed; also seeds the generated program and input sets.
    pub seed: u64,
    /// Move budget: total proposals (including no-opportunity draws).
    pub moves: u64,
    /// Initial annealing temperature, in cost (step-count) units.
    pub temp: f64,
    /// Geometric cooling factor applied once per proposal.
    pub cooling: f64,
    /// Proposals without a new best before a restart (rollback to the best
    /// checkpoint) — and, once restarts are exhausted, before stopping.
    pub plateau: u64,
    /// Restarts allowed before the plateau rule stops the run.
    pub max_restarts: u64,
    /// Undo strategy for the reject step.
    pub strategy: Strategy,
    /// Generated-workload size (enabling fragments).
    pub fragments: usize,
    /// Seeded interpreter input sets scored per candidate.
    pub input_sets: usize,
    /// Length of each input stream.
    pub input_len: usize,
    /// Interpreter fuel per scoring run; exhaustion scores [`WORST_COST`].
    pub fuel: u64,
}

impl Default for SearchCfg {
    fn default() -> Self {
        SearchCfg {
            seed: 0,
            moves: 10_000,
            temp: 64.0,
            cooling: 0.9995,
            plateau: 5_000,
            max_restarts: 64,
            strategy: Strategy::Regional,
            fragments: 10,
            input_sets: 2,
            input_len: 64,
            fuel: 1_000_000,
        }
    }
}

/// How rejected candidates are discarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectMode {
    /// The product under test: build the candidate in place, reject via
    /// [`Session::reject`] (Figure-4 undo, checkpoint fallback).
    UndoReject,
    /// The oracle: build the candidate in a [`Session::fork`], accept by
    /// adopting the fork, reject by dropping it. Never undoes.
    ForkOracle,
}

/// What one [`Search::step`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// Candidate accepted (downhill or equal cost).
    Accepted,
    /// Candidate accepted uphill by the Metropolis rule.
    AcceptedUphill,
    /// Candidate rejected and removed.
    Rejected,
    /// The drawn kind had no applicable opportunity.
    NoOpportunity,
    /// The opportunity was found but `apply` refused it.
    ApplyError,
    /// Move budget exhausted; the session is final.
    Budget,
    /// Plateau persisted with no restarts left; the session is final.
    Plateaued,
}

/// Result of a finished search run. `move_log` and `accepted_moves` are the
/// determinism witnesses: byte-identical for identical (seed, cfg)
/// regardless of thread count, rep mode, or reject mode.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Seed the run used.
    pub seed: u64,
    /// Proposals made (≤ cfg.moves; less only on plateau stop).
    pub proposed: u64,
    /// Moves accepted (including uphill).
    pub accepted: u64,
    /// Accepted moves that were uphill (Metropolis).
    pub uphill: u64,
    /// Moves rejected and removed.
    pub rejected: u64,
    /// Proposals whose drawn kind had no opportunity.
    pub no_opportunity: u64,
    /// Proposals whose apply refused (atomic rollback inside apply).
    pub apply_errors: u64,
    /// Rejects that went through the Figure-4 undo.
    pub undo_rejects: u64,
    /// Rejects that fell back to checkpoint rollback.
    pub rollback_rejects: u64,
    /// Plateau restarts taken.
    pub restarts: u64,
    /// Candidates whose output stream diverged from the baseline (always
    /// rejected; any nonzero value is a semantics bug).
    pub output_divergences: u64,
    /// Cost of the starting program.
    pub initial_cost: u64,
    /// Best cost seen.
    pub best_cost: u64,
    /// Cost of the final program.
    pub final_cost: u64,
    /// Move numbers of accepted proposals, in order.
    pub accepted_moves: Vec<u64>,
    /// One line per proposal (plus restart lines). Structural only — no
    /// arena or history ids — so undo-reject and fork-oracle runs produce
    /// identical logs.
    pub move_log: Vec<String>,
    /// Per-accepted-move latency (propose+apply+score), nanoseconds.
    pub accept_ns: Vec<u64>,
    /// Per-reject latency of the discard step alone (undo or fork drop).
    pub reject_ns: Vec<u64>,
    /// Wall time of the whole run (set by [`Search::run`]).
    pub elapsed_ns: u64,
    /// Final program source.
    pub final_source: String,
    /// Active history records at termination.
    pub active_len: usize,
    /// Structural digest of the final state (see [`Search::digest`]).
    pub digest: u64,
}

impl SearchOutcome {
    /// Proposals per second over the whole run (0 if not timed).
    pub fn moves_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.proposed as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// Metropolis acceptance: always downhill-or-equal; uphill with probability
/// `exp(-delta / temp)`. Draws from `rng` only when the move is uphill and
/// the temperature is positive, so callers that share a seed stay in RNG
/// lockstep. A [`WORST_COST`] candidate against a finite current cost has
/// an effectively infinite delta: the exponential underflows to zero and
/// the draw (strictly less than) can never pass.
pub fn accepts(rng: &mut StdRng, temp: f64, cur: u64, cand: u64) -> bool {
    if cand <= cur {
        return true;
    }
    if temp <= 0.0 {
        return false;
    }
    let delta = (cand - cur) as f64;
    rng.gen::<f64>() < (-delta / temp).exp()
}

/// Total interpreter steps to run `prog` over every input set;
/// [`WORST_COST`] if any run fails.
pub fn cost_of(prog: &Program, inputs: &[Vec<i64>], fuel: u64) -> u64 {
    eval(prog, inputs, fuel).0
}

/// Cost plus the concatenated output streams (None when a run failed).
fn eval(prog: &Program, inputs: &[Vec<i64>], fuel: u64) -> (u64, Option<Vec<Vec<i64>>>) {
    let mut total = 0u64;
    let mut outs = Vec::with_capacity(inputs.len());
    for input in inputs {
        match interp::run_counted(prog, input, Limits { fuel }) {
            Ok(c) => {
                total = total.saturating_add(c.steps);
                outs.push(c.output);
            }
            Err(_) => return (WORST_COST, None),
        }
    }
    (total, Some(outs))
}

/// The seeded input sets a run scores against.
pub fn search_inputs(cfg: &SearchCfg) -> Vec<Vec<i64>> {
    (0..cfg.input_sets)
        .map(|i| crate::gen_inputs(cfg.seed ^ (0xA5A5_0000 + i as u64), cfg.input_len))
        .collect()
}

/// The generated program a seeded run starts from.
pub fn search_session(cfg: &SearchCfg) -> Session {
    let wcfg = crate::WorkloadCfg {
        fragments: cfg.fragments,
        ..Default::default()
    };
    Session::new(crate::gen_program(cfg.seed, &wcfg))
}

/// Counter/histogram handles resolved once per run — the registry lookup
/// (global lock + hash) is off the per-move path.
struct SearchMetrics {
    moves: Arc<pivot_obs::metrics::Counter>,
    accepted: Arc<pivot_obs::metrics::Counter>,
    rejected: Arc<pivot_obs::metrics::Counter>,
    no_opportunity: Arc<pivot_obs::metrics::Counter>,
    reject_rollbacks: Arc<pivot_obs::metrics::Counter>,
    restarts: Arc<pivot_obs::metrics::Counter>,
    undo_reject_ns: Arc<pivot_obs::metrics::Histogram>,
}

impl SearchMetrics {
    fn resolve() -> SearchMetrics {
        let m = pivot_obs::metrics::global();
        SearchMetrics {
            moves: m.counter("search.moves"),
            accepted: m.counter("search.accepted"),
            rejected: m.counter("search.rejected"),
            no_opportunity: m.counter("search.no_opportunity"),
            reject_rollbacks: m.counter("search.reject_rollbacks"),
            restarts: m.counter("search.restarts"),
            undo_reject_ns: m.histogram("search.undo_reject_ns"),
        }
    }
}

/// Identity of one proposed move — number, kind, and which of the `n`
/// opportunities was drawn — threaded to the bookkeeping helpers.
#[derive(Clone, Copy)]
struct Proposal {
    m: u64,
    kind: pivot_undo::XformKind,
    pick: usize,
    n: usize,
}

/// A stochastic search in progress. Step-wise so the differential harness
/// can compare two modes after every single move; [`Search::run`] drives it
/// to termination.
pub struct Search {
    session: Session,
    cfg: SearchCfg,
    mode: RejectMode,
    rng: StdRng,
    inputs: Vec<Vec<i64>>,
    /// Output streams of the starting program (None if it cannot run, in
    /// which case equivalence checking is off and cost-only search remains).
    baseline: Option<Vec<Vec<i64>>>,
    temp: f64,
    cur_cost: u64,
    best_cost: u64,
    best_cp: Checkpoint,
    since_improve: u64,
    /// Cached per-kind opportunity lists, valid only while the program is
    /// untouched (cleared on accept/reject/restart). No-opportunity draws —
    /// the bulk of a converged walk — skip the catalog scan entirely.
    found: Vec<Option<Vec<pivot_undo::Opportunity>>>,
    metrics: SearchMetrics,
    out: SearchOutcome,
}

impl Search {
    /// Start a search over `session`.
    pub fn new(session: Session, cfg: SearchCfg, mode: RejectMode) -> Search {
        let inputs = search_inputs(&cfg);
        let (initial_cost, baseline) = eval(&session.prog, &inputs, cfg.fuel);
        let best_cp = session.checkpoint();
        let out = SearchOutcome {
            seed: cfg.seed,
            initial_cost,
            best_cost: initial_cost,
            final_cost: initial_cost,
            ..Default::default()
        };
        Search {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x005E_A2C4_1994),
            temp: cfg.temp,
            cur_cost: initial_cost,
            best_cost: initial_cost,
            best_cp,
            since_improve: 0,
            inputs,
            baseline,
            found: vec![None; ALL_KINDS.len()],
            metrics: SearchMetrics::resolve(),
            session,
            cfg,
            mode,
            out,
        }
    }

    /// The session in its current (mid-search) state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Current-state cost.
    pub fn cur_cost(&self) -> u64 {
        self.cur_cost
    }

    /// The most recent move-log line.
    pub fn last_log(&self) -> Option<&str> {
        self.out.move_log.last().map(|s| s.as_str())
    }

    /// The outcome so far (counters and logs up to the last step).
    pub fn outcome(&self) -> &SearchOutcome {
        &self.out
    }

    /// FNV-1a digest of the *structural* search state: final source, active
    /// history kinds in order, and current cost. Deliberately not the
    /// session snapshot fingerprint: that hashes arena internals (node ids,
    /// tombstones) and the append-only history, which legitimately differ
    /// between an undo-reject walk and a fork-oracle walk even when the
    /// states the paper claims are equal — the program and its active
    /// transformation set — agree exactly.
    pub fn digest(&self) -> u64 {
        let mut h = fnv(0xcbf2_9ce4_8422_2325, self.session.source().as_bytes());
        for r in self.session.history.active() {
            h = fnv(h, r.kind.to_string().as_bytes());
        }
        fnv(h, &self.cur_cost.to_le_bytes())
    }

    /// One proposal. Returns what happened; [`StepKind::Budget`] and
    /// [`StepKind::Plateaued`] mean the run is over and the session final.
    pub fn step(&mut self) -> StepKind {
        if self.out.proposed >= self.cfg.moves {
            return StepKind::Budget;
        }
        if self.since_improve >= self.cfg.plateau && self.out.restarts >= self.cfg.max_restarts {
            return StepKind::Plateaued;
        }
        let m = self.out.proposed;
        self.out.proposed += 1;
        self.metrics.moves.inc();

        let ki = self.rng.gen_range(0..ALL_KINDS.len());
        let kind = ALL_KINDS[ki];
        if self.found[ki].is_none() {
            self.found[ki] = Some(self.session.find(kind));
        }
        let n = match &self.found[ki] {
            Some(opps) => opps.len(),
            None => 0,
        };
        if n == 0 {
            self.out.no_opportunity += 1;
            self.metrics.no_opportunity.inc();
            self.out.move_log.push(format!("{m:06} {kind} no-opp"));
            self.since_improve += 1;
            self.cool_and_maybe_restart(m);
            return StepKind::NoOpportunity;
        }
        let pick = self.rng.gen_range(0..n);
        let opp = match &self.found[ki] {
            Some(opps) => opps[pick].clone(),
            None => unreachable!("checked non-empty above"),
        };
        let p = Proposal { m, kind, pick, n };

        let t0 = Instant::now();
        let step = match self.mode {
            RejectMode::UndoReject => {
                let cp = self.session.checkpoint();
                match self.session.apply(&opp) {
                    Err(_) => self.note_apply_error(p),
                    Ok(id) => {
                        let (cand, outs) = eval(&self.session.prog, &self.inputs, self.cfg.fuel);
                        let ok = self.outputs_match(&outs);
                        if ok && accepts(&mut self.rng, self.temp, self.cur_cost, cand) {
                            self.note_accept(p, cand, t0)
                        } else {
                            let r0 = Instant::now();
                            let path = self.session.reject(id, self.cfg.strategy, cp);
                            let ns = r0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            self.metrics.undo_reject_ns.record_ns(ns);
                            if !path.via_undo() {
                                self.out.rollback_rejects += 1;
                                self.metrics.reject_rollbacks.inc();
                            } else {
                                self.out.undo_rejects += 1;
                            }
                            self.note_reject(p, cand, ok, ns)
                        }
                    }
                }
            }
            RejectMode::ForkOracle => {
                let mut fork = self.session.fork();
                match fork.apply(&opp) {
                    Err(_) => self.note_apply_error(p),
                    Ok(_id) => {
                        let (cand, outs) = eval(&fork.prog, &self.inputs, self.cfg.fuel);
                        let ok = self.outputs_match(&outs);
                        if ok && accepts(&mut self.rng, self.temp, self.cur_cost, cand) {
                            self.session = fork;
                            self.note_accept(p, cand, t0)
                        } else {
                            let r0 = Instant::now();
                            drop(fork);
                            let ns = r0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                            self.note_reject(p, cand, ok, ns)
                        }
                    }
                }
            }
        };
        self.cool_and_maybe_restart(m);
        step
    }

    /// Drive to termination, recording wall time.
    pub fn run(mut self) -> SearchOutcome {
        let t0 = Instant::now();
        loop {
            match self.step() {
                StepKind::Budget | StepKind::Plateaued => break,
                _ => {}
            }
        }
        self.out.elapsed_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.finish()
    }

    /// Finalize the outcome from the current session state.
    pub fn finish(mut self) -> SearchOutcome {
        self.out.final_cost = self.cur_cost;
        self.out.final_source = self.session.source();
        self.out.active_len = self.session.history.active_len();
        self.out.digest = self.digest();
        self.out
    }

    fn outputs_match(&self, outs: &Option<Vec<Vec<i64>>>) -> bool {
        match (&self.baseline, outs) {
            (Some(base), Some(got)) => base == got,
            // Failed candidate: scored WORST_COST, rejected by cost alone.
            (Some(_), None) => true,
            // No runnable baseline: equivalence checking is off.
            (None, _) => true,
        }
    }

    fn note_accept(&mut self, p: Proposal, cand: u64, t0: Instant) -> StepKind {
        let Proposal { m, kind, pick, n } = p;
        let uphill = cand > self.cur_cost;
        self.cur_cost = cand;
        self.out.accepted += 1;
        if uphill {
            self.out.uphill += 1;
        }
        self.metrics.accepted.inc();
        self.out.accepted_moves.push(m);
        self.out
            .accept_ns
            .push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        self.found.iter_mut().for_each(|f| *f = None);
        if cand < self.best_cost {
            self.best_cost = cand;
            self.out.best_cost = cand;
            self.best_cp = self.session.checkpoint();
            self.since_improve = 0;
        } else {
            self.since_improve += 1;
        }
        let verdict = if uphill { "accept+" } else { "accept" };
        self.out.move_log.push(format!(
            "{m:06} {kind} opp {pick}/{n} cost {cand} {verdict}"
        ));
        if uphill {
            StepKind::AcceptedUphill
        } else {
            StepKind::Accepted
        }
    }

    fn note_reject(&mut self, p: Proposal, cand: u64, ok: bool, ns: u64) -> StepKind {
        let Proposal { m, kind, pick, n } = p;
        self.out.rejected += 1;
        self.metrics.rejected.inc();
        self.out.reject_ns.push(ns);
        if !ok {
            self.out.output_divergences += 1;
        }
        self.since_improve += 1;
        self.found.iter_mut().for_each(|f| *f = None);
        let verdict = if ok { "reject" } else { "reject-divergent" };
        self.out.move_log.push(format!(
            "{m:06} {kind} opp {pick}/{n} cost {cand} {verdict}"
        ));
        StepKind::Rejected
    }

    fn note_apply_error(&mut self, p: Proposal) -> StepKind {
        let Proposal { m, kind, pick, n } = p;
        self.out.apply_errors += 1;
        self.since_improve += 1;
        self.found.iter_mut().for_each(|f| *f = None);
        self.out
            .move_log
            .push(format!("{m:06} {kind} opp {pick}/{n} apply-err"));
        StepKind::ApplyError
    }

    fn cool_and_maybe_restart(&mut self, m: u64) {
        self.temp *= self.cfg.cooling;
        if self.since_improve >= self.cfg.plateau && self.out.restarts < self.cfg.max_restarts {
            self.out.restarts += 1;
            self.metrics.restarts.inc();
            self.session.rollback(self.best_cp.clone());
            self.cur_cost = self.best_cost;
            self.temp = self.cfg.temp;
            self.since_improve = 0;
            self.found.iter_mut().for_each(|f| *f = None);
            self.out
                .move_log
                .push(format!("{m:06} restart best {}", self.best_cost));
        }
    }
}

/// Run a seeded undo-reject search over a generated workload.
pub fn run_search(cfg: &SearchCfg) -> SearchOutcome {
    Search::new(search_session(cfg), cfg.clone(), RejectMode::UndoReject).run()
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    // Separate fields so ("ab","c") and ("a","bc") hash differently.
    (h ^ 0xff).wrapping_mul(FNV_PRIME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::parser::parse;

    #[test]
    fn cost_counts_steps_and_errors_are_worst() {
        let p = parse("s = 0\ndo i = 1, 5\n  s = s + i\nenddo\nwrite s\n").unwrap();
        let inputs = vec![vec![]];
        let c = cost_of(&p, &inputs, 1_000);
        assert!(c > 0 && c < 1_000);
        // Same program, same inputs: same cost.
        assert_eq!(c, cost_of(&p, &inputs, 1_000));
        // Starve the fuel: evaluation fails, cost saturates to worst-case.
        assert_eq!(cost_of(&p, &inputs, 3), WORST_COST);
    }

    #[test]
    fn acceptance_never_takes_a_failed_candidate() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert!(!accepts(&mut rng, 1e9, 100, WORST_COST));
        }
        // ... but downhill-or-equal always passes, even from a failed state.
        assert!(accepts(&mut rng, 1.0, WORST_COST, WORST_COST));
        assert!(accepts(&mut rng, 0.0, 100, 100));
        assert!(accepts(&mut rng, 0.0, 100, 50));
        // Zero temperature: strictly greedy.
        assert!(!accepts(&mut rng, 0.0, 100, 101));
    }

    #[test]
    fn uphill_probability_scales_with_temperature() {
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 2_000;
        let hot = (0..trials)
            .filter(|_| accepts(&mut rng, 1_000.0, 100, 110))
            .count();
        let cold = (0..trials)
            .filter(|_| accepts(&mut rng, 1.0, 100, 110))
            .count();
        assert!(hot > trials / 2, "hot walk should accept most: {hot}");
        assert_eq!(cold, 0, "10-step uphill at T=1 is e^-10");
    }

    #[test]
    fn small_search_improves_and_stays_consistent() {
        let cfg = SearchCfg {
            seed: 3,
            moves: 400,
            fragments: 8,
            ..Default::default()
        };
        let s = Search::new(search_session(&cfg), cfg.clone(), RejectMode::UndoReject);
        let out = s.run();
        assert!(out.accepted >= 1, "no accepted move in 400 proposals");
        assert_eq!(out.output_divergences, 0);
        assert!(out.best_cost <= out.initial_cost);
        assert_eq!(
            out.proposed as usize,
            out.move_log.len() - out.restarts as usize
        );
        // Re-running the exact cfg reproduces the run byte-for-byte.
        let again = run_search(&cfg);
        assert_eq!(out.move_log, again.move_log);
        assert_eq!(out.accepted_moves, again.accepted_moves);
        assert_eq!(out.digest, again.digest);
    }
}

//! Constructive witnesses for Table 4's enabling interactions.
//!
//! A *witness* for the cell `(from, to)` is a program in which no `to`
//! opportunity exists at a particular site until one `from` instance is
//! applied — demonstrating the perform-create dependency empirically rather
//! than by transcription. [`derive_matrix`] replays every witness through
//! the real engine and reports which cells were demonstrated; the
//! cross-check against the paper's table is experiment E4.
//!
//! Not every marked cell has a single-step witness under this library's
//! (deliberately conservative) pre-conditions — e.g. `CSE → FUS` needs a
//! fusion test finer than ours. Such cells remain marked in the static
//! table (the heuristic stays sound: extra marks only cost extra checks)
//! and are listed as "not demonstrated" by the harness.

use pivot_undo::engine::Session;
use pivot_undo::interact::Matrix;
use pivot_undo::XformKind;

/// A registered witness program.
pub struct Witness {
    /// The enabling transformation.
    pub from: XformKind,
    /// The enabled transformation.
    pub to: XformKind,
    /// Program source.
    pub source: &'static str,
    /// One-line explanation.
    pub note: &'static str,
}

/// All registered witnesses.
pub fn witnesses() -> Vec<Witness> {
    use XformKind::*;
    vec![
        Witness {
            from: Dce,
            to: Dce,
            source: "x = 1\ny = x\nwrite 0\n",
            note: "removing the dead y = x makes x = 1 dead",
        },
        Witness {
            from: Dce,
            to: Cse,
            source: "d = e + f\nx = d\nd = 5\nr = e + f\nwrite x\nwrite r\n",
            note: "removing the dead d = 5 re-establishes d == e + f at r",
        },
        Witness {
            from: Dce,
            to: Cpp,
            source: "read y\nx = y\ny = 99\nwrite x\n",
            note: "removing the dead y = 99 lets y propagate for x",
        },
        Witness {
            from: Dce,
            to: Icm,
            source: "do i = 1, 4\n  x = a + b\n  A(i) = x\n  x = 9\nenddo\nwrite A(2)\n",
            note: "removing the dead second def of x leaves one hoistable def",
        },
        Witness {
            from: Dce,
            to: Fus,
            source: "do i = 1, 4\n  A(i) = 1\nenddo\nx = 5\ndo i = 1, 4\n  B(i) = 2\nenddo\nwrite B(1)\n",
            note: "removing the dead statement between the loops makes them adjacent",
        },
        Witness {
            from: Dce,
            to: Inx,
            source: "do i = 1, 4\n  x = 5\n  do j = 1, 4\n    A(i, j) = 1\n  enddo\nenddo\nwrite A(1, 1)\n",
            note: "removing the dead statement restores tight nesting",
        },
        Witness {
            from: Cse,
            to: Cse,
            source: "a = e + f\nb = e + f + g\nc = a + g\nwrite a\nwrite b\nwrite c\n",
            note: "rewriting b's subexpression to a creates the common a + g",
        },
        Witness {
            from: Cse,
            to: Cpp,
            source: "d = e + f\nr = e + f\nwrite r\nwrite d\n",
            note: "the rewritten r = d is a copy to propagate",
        },
        Witness {
            from: Ctp,
            to: Dce,
            source: "c = 1\nx = c + 2\nwrite x\n",
            note: "after propagation c = 1 has no remaining uses",
        },
        Witness {
            from: Ctp,
            to: Cse,
            source: "k = 5\nd = e + 5\nr = e + k\nwrite d\nwrite r\n",
            note: "propagating k aligns r's expression with d's",
        },
        Witness {
            from: Ctp,
            to: Cfo,
            source: "c = 2\nx = c * 3\nwrite x\n",
            note: "the propagated constant makes the product foldable",
        },
        Witness {
            from: Ctp,
            to: Icm,
            source: "n = 8\ndo i = 1, n\n  x = a + b\n  A(i) = x + i\nenddo\nwrite A(3)\n",
            note: "propagating n gives the loop constant bounds (trip ≥ 1 provable)",
        },
        Witness {
            from: Ctp,
            to: Smi,
            source: "n = 8\ndo i = 1, n\n  A(i) = i\nenddo\nwrite A(2)\n",
            note: "propagating n makes the trip count constant and divisible",
        },
        Witness {
            from: Ctp,
            to: Fus,
            source: "n = 5\ndo i = 1, 5\n  A(i) = 1\nenddo\ndo i = 1, n\n  B(i) = 2\nenddo\nwrite B(1)\n",
            note: "propagating n makes the headers conformable",
        },
        Witness {
            from: Ctp,
            to: Inx,
            source: "k = 1\ndo i = 2, 6\n  do j = 2, 6\n    A(i, j) = A(i - 1, j - k) + 1\n  enddo\nenddo\nwrite A(3, 3)\n",
            note: "propagating k resolves the (*,*) direction to the legal (<,<)",
        },
        Witness {
            from: Cpp,
            to: Dce,
            source: "read y\nx = y\nwrite x\n",
            note: "after propagation the copy x = y is dead",
        },
        Witness {
            from: Cpp,
            to: Cse,
            source: "read y\nx = y\nd = e + y\nr = e + x\nwrite d\nwrite r\n",
            note: "renaming x to y aligns the two sums",
        },
        Witness {
            from: Cpp,
            to: Cpp,
            source: "read y\nz = y\nx = z\nwrite x\n",
            note: "propagating x ⇒ z exposes the use of z to the y-copy",
        },
        Witness {
            from: Cfo,
            to: Ctp,
            source: "x = 2 * 3\ny = x + 1\nwrite y\n",
            note: "folding makes x's definition a literal constant",
        },
        Witness {
            from: Cfo,
            to: Cfo,
            source: "x = 1 + 2 + 3 + z\nwrite x\n",
            note: "folding the inner sum makes the outer sum foldable",
        },
        Witness {
            from: Cfo,
            to: Fus,
            source: "do i = 1, 6\n  A(i) = 1\nenddo\ndo i = 1, 2 * 3\n  B(i) = 2\nenddo\nwrite B(1)\n",
            note: "folding the second bound makes the headers structurally equal",
        },
        Witness {
            from: Lur,
            to: Fus,
            source: "do i = 1, 6, 2\n  A(i) = 1\nenddo\ndo i = 1, 6\n  B(i) = 2\nenddo\nwrite B(1)\n",
            note: "unrolling the second loop matches the first loop's step",
        },
        Witness {
            from: Lur,
            to: Ctp,
            source: "do i = 1, 4\n  kc = 7\n  A(i) = kc + i\nenddo\nwrite A(1)\n",
            note: "each unrolled copy of kc = 7 is a fresh constant definition",
        },
        Witness {
            from: Icm,
            to: Inx,
            source: "do i = 1, 6\n  x = a + b\n  do j = 1, 6\n    A(i, j) = x\n  enddo\nenddo\nwrite A(1, 1)\n",
            note: "hoisting x = a + b out of the i-loop restores tight nesting",
        },
        Witness {
            from: Icm,
            to: Fus,
            source: "do i = 1, 4\n  t = a + b\n  C(i) = t\nenddo\ndo i = 1, 4\n  D(i) = 2\nenddo\nwrite C(1)\nwrite D(1)\n",
            note: "hoisting the scalar definition clears the fusion hazard",
        },
        Witness {
            from: Icm,
            to: Icm,
            source: "do i = 1, 4\n  do j = 1, 4\n    x = a + b\n    B(i, j) = x + i + j\n  enddo\nenddo\nwrite B(2, 2)\n",
            note: "hoisting out of the j-loop exposes invariance in the i-loop",
        },
        Witness {
            from: Icm,
            to: Cse,
            source: "do i = 1, 4\n  d = e + f\n  A(i) = d + i\nenddo\nr = e + f\nwrite A(1)\nwrite r\n",
            note: "hoisted above the loop, d = e + f dominates the later use",
        },
        Witness {
            from: Inx,
            to: Icm,
            source: "do i = 1, 10\n  do j = 1, 5\n    A(j) = B(j) + 1\n    R(i, j) = E + F\n  enddo\nenddo\nwrite A(1)\nwrite R(2, 3)\n",
            note: "Figure 1: after interchange, A(j) = B(j) + 1 is invariant in the inner i-loop",
        },
        Witness {
            from: Lur,
            to: Cse,
            source: "do i = 1, 4\n  t = e + f\n  A(i) = t + i\nenddo\nwrite A(2)\n",
            note: "the unrolled copy re-materializes e + f as a second occurrence",
        },
        Witness {
            from: Lur,
            to: Cpp,
            source: "read s\ndo i = 1, 4\n  cv = s\n  A(i) = cv + i\nenddo\nwrite A(1)\n",
            note: "each unrolled copy of cv = s is a fresh propagatable copy",
        },
        Witness {
            from: Fus,
            to: Inx,
            source: "do k = 1, 4\n  do i = 1, 4\n    A(k, i) = 1\n  enddo\n  do i = 1, 4\n    B(k, i) = A(k, i)\n  enddo\nenddo\nwrite B(2, 2)\n",
            note: "fusing the inner loops makes the k-nest tightly nested",
        },
        Witness {
            from: Fus,
            to: Fus,
            source: "do i = 1, 4\n  A(i) = 1\nenddo\ndo i = 1, 4\n  B(i) = 2\nenddo\ndo i = 1, 4\n  C(i) = 3\nenddo\nwrite C(1)\n",
            note: "fusing the first pair makes the result adjacent to the third loop",
        },
    ]
}

/// Result of replaying one witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessResult {
    /// Applying `from` created a brand-new `to` opportunity.
    Demonstrated,
    /// `to` was already applicable before `from` (witness too weak).
    AlreadyEnabled,
    /// `from` itself did not apply.
    FromNotApplicable,
    /// `from` applied but no new `to` appeared.
    NotEnabled,
}

/// Replay a witness through the engine. An instance is identified by its
/// parameter signature (sites and payload); a cell is demonstrated when an
/// instance signature appears after applying `from` that did not exist
/// before — i.e. `from` *created* a `to` opportunity (arena IDs are stable,
/// so unchanged instances keep identical signatures).
pub fn replay(w: &Witness) -> WitnessResult {
    let mut s = match Session::from_source(w.source) {
        Ok(s) => s,
        Err(_) => return WitnessResult::FromNotApplicable,
    };
    let sig = |s: &Session| -> std::collections::HashSet<String> {
        s.find(w.to)
            .iter()
            .map(|o| format!("{:?}", o.params))
            .collect()
    };
    let before = sig(&s);
    if s.apply_kind(w.from).is_none() {
        return WitnessResult::FromNotApplicable;
    }
    let after = sig(&s);
    if after.difference(&before).next().is_some() {
        WitnessResult::Demonstrated
    } else if !after.is_empty() {
        WitnessResult::AlreadyEnabled
    } else {
        WitnessResult::NotEnabled
    }
}

/// Replay every witness; returns the empirically demonstrated matrix and
/// the list of failures (should be empty).
pub fn derive_matrix() -> (Matrix, Vec<(XformKind, XformKind, WitnessResult)>) {
    let mut m: Matrix = [[false; 10]; 10];
    let mut failures = Vec::new();
    for w in witnesses() {
        match replay(&w) {
            WitnessResult::Demonstrated => m[w.from.index()][w.to.index()] = true,
            other => failures.push((w.from, w.to, other)),
        }
    }
    (m, failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_undo::interact::default_matrix;

    #[test]
    fn all_witnesses_demonstrate() {
        for w in witnesses() {
            let r = replay(&w);
            assert_eq!(
                r,
                WitnessResult::Demonstrated,
                "witness {} → {} failed ({:?}): {}\n{}",
                w.from,
                w.to,
                r,
                w.note,
                w.source
            );
        }
    }

    #[test]
    fn demonstrated_cells_are_marked_in_static_table() {
        let (derived, failures) = derive_matrix();
        assert!(failures.is_empty(), "failures: {failures:?}");
        let table = default_matrix();
        for (r, row) in derived.iter().enumerate() {
            for (c, &hit) in row.iter().enumerate() {
                if hit {
                    assert!(
                        table[r][c],
                        "witnessed {}→{} is unmarked in the static table",
                        pivot_undo::ALL_KINDS[r],
                        pivot_undo::ALL_KINDS[c]
                    );
                }
            }
        }
    }

    #[test]
    fn paper_rows_substantially_demonstrated() {
        // Of the paper's five printed rows, most marks have constructive
        // single-step witnesses under our (conservative) preconditions.
        let (derived, _) = derive_matrix();
        let count: usize = derived
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum();
        assert!(count >= 25, "only {count} cells demonstrated");
    }
}

//! # pivot-workload
//!
//! Seeded synthetic workloads for the PIVOT undo reproduction: program
//! generators (assembled from per-transformation [`fragments`]),
//! transformation-sequence drivers, and edit generators. Everything is
//! deterministic under a seed, so benches and property tests are
//! reproducible.

#![warn(missing_docs)]

pub mod auditcheck;
pub mod cowcheck;
pub mod faults;
pub mod fragments;
pub mod incrcheck;
pub mod parcheck;
pub mod search;
pub mod searchcheck;
pub mod servecheck;
pub mod witnesses;

use pivot_lang::builder::ProgramBuilder;
use pivot_lang::Program;
use pivot_undo::engine::Session;
use pivot_undo::{XformId, XformKind, ALL_KINDS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Workload shape.
#[derive(Clone, Debug)]
pub struct WorkloadCfg {
    /// Number of transformation-enabling fragments.
    pub fragments: usize,
    /// Noise (inert) fragments interleaved per enabling fragment.
    pub noise_ratio: f64,
    /// Restrict the fragment mix to these kinds (None = all ten).
    pub kinds: Option<Vec<XformKind>>,
    /// Include Figure 1 interaction fragments (chains of CSE/CTP/INX/ICM).
    pub figure1_chains: usize,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            fragments: 8,
            noise_ratio: 0.5,
            kinds: None,
            figure1_chains: 0,
        }
    }
}

/// Generate a seeded program.
pub fn gen_program(seed: u64, cfg: &WorkloadCfg) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let kinds: Vec<XformKind> = cfg.kinds.clone().unwrap_or_else(|| ALL_KINDS.to_vec());
    let mut tag = 0usize;
    for f in 0..cfg.fragments {
        let kind = kinds[f % kinds.len()];
        fragments::emit(&mut b, kind, tag, &mut rng);
        tag += 1;
        if rng.gen_bool(cfg.noise_ratio.clamp(0.0, 1.0)) {
            fragments::noise(&mut b, tag, &mut rng);
            tag += 1;
        }
    }
    for _ in 0..cfg.figure1_chains {
        fragments::figure1(&mut b, tag);
        tag += 1;
    }
    b.finish()
}

/// A generated session with its applied transformation ids.
pub struct Prepared {
    /// The session, with transformations applied.
    pub session: Session,
    /// Ids in application order.
    pub applied: Vec<XformId>,
}

/// Build a session and greedily apply up to `max` transformations,
/// round-robin over kinds, deterministically under `seed`.
pub fn prepare(seed: u64, cfg: &WorkloadCfg, max: usize) -> Prepared {
    prepare_in_mode(seed, cfg, max, pivot_undo::RepMode::Batch)
}

/// [`prepare`] with an explicit representation-refresh mode, selected
/// *before* the first transformation so incremental (or checked) updates
/// cover the whole build-up, not just later operations.
pub fn prepare_in_mode(
    seed: u64,
    cfg: &WorkloadCfg,
    max: usize,
    mode: pivot_undo::RepMode,
) -> Prepared {
    prepare_with_pool(seed, cfg, max, mode, pivot_undo::Pool::from_env())
}

/// [`prepare_in_mode`] with an explicit worker pool, installed *before* the
/// first transformation so the parallel kernels cover the whole build-up.
/// The prepared session keeps the pool.
pub fn prepare_with_pool(
    seed: u64,
    cfg: &WorkloadCfg,
    max: usize,
    mode: pivot_undo::RepMode,
    pool: pivot_undo::Pool,
) -> Prepared {
    let prog = gen_program(seed, cfg);
    let mut session = Session::new(prog);
    session.set_pool(pool);
    session.set_rep_mode(mode);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut applied = Vec::new();
    let mut kinds: Vec<XformKind> = cfg.kinds.clone().unwrap_or_else(|| ALL_KINDS.to_vec());
    loop {
        if applied.len() >= max {
            break;
        }
        kinds.shuffle(&mut rng);
        let mut progressed = false;
        for &k in &kinds {
            if applied.len() >= max {
                break;
            }
            if let Some(id) = session.apply_kind(k) {
                applied.push(id);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    Prepared { session, applied }
}

/// Generate a random edit against the current program. When an applied
/// def-use rewrite (CTP/CPP/CSE) exists, the edit inserts a definition of
/// one of its watched symbols directly after the defining statement —
/// landing on the def-use path and invalidating that transformation (the
/// paper's edit scenario). Otherwise falls back to inserting a definition
/// of some used symbol at a random top-level position.
pub fn gen_edit(session: &Session, seed: u64) -> pivot_undo::Edit {
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = &session.prog;
    // Prefer an aimed edit at one of the applied rewrites.
    let rewrites: Vec<(pivot_lang::StmtId, pivot_lang::Sym)> = session
        .history
        .active()
        .filter_map(|r| match &r.params {
            pivot_undo::XformParams::Ctp { def_stmt, var, .. } => Some((*def_stmt, *var)),
            pivot_undo::XformParams::Cpp { def_stmt, to, .. } => Some((*def_stmt, *to)),
            pivot_undo::XformParams::Cse {
                def_stmt,
                operand_syms,
                ..
            } => operand_syms.first().map(|&s| (*def_stmt, s)),
            _ => None,
        })
        .filter(|(d, _)| prog.is_live(*d) && prog.stmt(*d).parent == Some(pivot_lang::Parent::Root))
        .collect();
    if !rewrites.is_empty() {
        let (def, sym) = rewrites[rng.gen_range(0..rewrites.len())];
        return pivot_undo::Edit::Insert {
            src: format!("{} = {}\n", prog.symbols.name(sym), rng.gen_range(0..100)),
            at: pivot_lang::Loc::after(pivot_lang::Parent::Root, def),
        };
    }
    // Fallback: a definition of some used scalar at a random position.
    let mut used: Vec<pivot_lang::Sym> = Vec::new();
    for s in prog.attached_stmts() {
        let du = pivot_ir::access::stmt_def_use(prog, s);
        used.extend(du.use_scalars);
    }
    used.sort_unstable();
    used.dedup();
    let name = if used.is_empty() {
        "fresh_edit_var".to_owned()
    } else {
        let pick = used[rng.gen_range(0..used.len())];
        prog.symbols.name(pick).to_owned()
    };
    let body = prog.body.clone();
    let at = if body.is_empty() || rng.gen_bool(0.3) {
        pivot_lang::Loc::root_start()
    } else {
        let anchor = body[rng.gen_range(0..body.len())];
        pivot_lang::Loc::after(pivot_lang::Parent::Root, anchor)
    };
    pivot_undo::Edit::Insert {
        src: format!("{name} = {}\n", rng.gen_range(0..100)),
        at,
    }
}

/// Random input stream for the interpreter (generated programs `read` at
/// most a few dozen values).
pub fn gen_inputs(seed: u64, len: usize) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-100..100)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_lang::equiv::programs_equal;
    use pivot_lang::interp;
    use pivot_undo::Strategy;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadCfg::default();
        let a = gen_program(42, &cfg);
        let b = gen_program(42, &cfg);
        assert!(programs_equal(&a, &b));
        let c = gen_program(43, &cfg);
        // Different seed differs in constants (overwhelmingly likely).
        assert!(!programs_equal(&a, &c));
    }

    #[test]
    fn prepare_applies_transformations() {
        let cfg = WorkloadCfg {
            fragments: 10,
            ..Default::default()
        };
        let prepared = prepare(5, &cfg, 8);
        assert!(
            prepared.applied.len() >= 6,
            "got {}",
            prepared.applied.len()
        );
        prepared.session.assert_consistent();
    }

    #[test]
    fn transformations_preserve_semantics_on_workloads() {
        for seed in 0..6 {
            let cfg = WorkloadCfg {
                fragments: 8,
                ..Default::default()
            };
            let prepared = prepare(seed, &cfg, 10);
            let inputs = gen_inputs(seed, 64);
            let before = interp::run_default(&prepared.session.original, &inputs).unwrap();
            let after = interp::run_default(&prepared.session.prog, &inputs).unwrap();
            assert_eq!(before, after, "seed {seed} broke semantics");
        }
    }

    #[test]
    fn undo_roundtrip_on_workloads() {
        for seed in 0..4 {
            let cfg = WorkloadCfg {
                fragments: 6,
                figure1_chains: 1,
                ..Default::default()
            };
            let mut prepared = prepare(seed, &cfg, 12);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order = prepared.applied.clone();
            order.shuffle(&mut rng);
            for id in order {
                match prepared.session.undo(id, Strategy::Regional) {
                    Ok(_) | Err(pivot_undo::UndoError::AlreadyUndone(_)) => {}
                    Err(e) => panic!("seed {seed}: {e}"),
                }
            }
            assert!(
                programs_equal(&prepared.session.prog, &prepared.session.original),
                "seed {seed} failed round-trip:\n{}",
                prepared.session.source()
            );
            prepared.session.assert_consistent();
        }
    }

    #[test]
    fn gen_edit_is_applicable() {
        let cfg = WorkloadCfg::default();
        let mut prepared = prepare(9, &cfg, 6);
        let edit = gen_edit(&prepared.session, 1);
        prepared.session.edit(&edit).unwrap();
        prepared.session.prog.assert_consistent();
    }
}

//! Experiment E4 (Table 4): the interaction matrix.
//!
//! * the five paper rows are transcribed and spot-checked;
//! * every witness replays successfully (perform-create demonstrated by
//!   construction, through the real engine);
//! * witnessed cells are always marked in the static table (the heuristic
//!   never misses a demonstrated interaction);
//! * the reverse-destroy reading holds: for each witnessed cell, applying
//!   `from`, then `to` enabled by it, then undoing `from`, removes `to` as
//!   an affected (or affecting) transformation.

use pivot_undo::engine::{Session, Strategy};
use pivot_undo::interact::{default_matrix, may_affect, paper_rows, render};
use pivot_undo::{XformState, ALL_KINDS};
use pivot_workload::witnesses::{derive_matrix, replay, witnesses, WitnessResult};

#[test]
fn paper_rows_transcription_counts() {
    // Count of x per printed row: DCE 6, CSE 3, CTP 7, ICM 4, INX 3.
    let expected = [6usize, 3, 7, 4, 3];
    for ((_, marks), want) in paper_rows().into_iter().zip(expected) {
        let got = marks.iter().filter(|&&m| m == b'x').count();
        assert_eq!(got, want);
    }
}

#[test]
fn all_witnesses_replay() {
    for w in witnesses() {
        assert_eq!(
            replay(&w),
            WitnessResult::Demonstrated,
            "{} → {} witness failed: {}",
            w.from,
            w.to,
            w.note
        );
    }
}

#[test]
fn derived_is_subset_of_static() {
    let (derived, failures) = derive_matrix();
    assert!(failures.is_empty());
    let table = default_matrix();
    for r in 0..10 {
        for c in 0..10 {
            if derived[r][c] {
                assert!(
                    table[r][c],
                    "witnessed {} → {} not marked statically",
                    ALL_KINDS[r], ALL_KINDS[c]
                );
            }
        }
    }
}

#[test]
fn matrix_renders_all_kinds() {
    let s = render(&default_matrix());
    for k in ALL_KINDS {
        assert!(s.contains(k.abbrev()));
    }
}

#[test]
fn reverse_destroy_reading_holds_for_witnessed_chains() {
    // For each witness: apply `from`, apply the newly enabled `to`, then
    // undo `from`. The engine either removes `to` in the cascade (its
    // safety was destroyed) or keeps it — in which case it must still be
    // genuinely safe and the program semantically intact. Undoing whatever
    // remains must restore the source exactly.
    let mut kept = Vec::new();
    for w in witnesses() {
        let mut s = Session::from_source(w.source).unwrap();
        let inputs: Vec<i64> = vec![3; 16];
        let expected = pivot_lang::interp::run_default(&s.prog, &inputs).unwrap();
        let before: std::collections::HashSet<String> = s
            .find(w.to)
            .iter()
            .map(|o| format!("{:?}", o.params))
            .collect();
        let from_id = s.apply_kind(w.from).expect("witness from applies");
        let new_opp = s
            .find(w.to)
            .into_iter()
            .find(|o| !before.contains(&format!("{:?}", o.params)))
            .expect("witness demonstrated a new opportunity");
        let to_id = s.apply(&new_opp).expect("enabled opportunity applies");
        match s.undo(from_id, Strategy::Regional) {
            Ok(r) => r,
            Err(e) => panic!("{} → {}: undo({}) failed: {e}", w.from, w.to, w.from),
        };
        s.assert_consistent();
        // Semantics must hold whether or not `to` survived.
        let now = pivot_lang::interp::run_default(&s.prog, &inputs).unwrap();
        assert_eq!(now, expected, "{} → {}: semantics broke", w.from, w.to);
        if s.history.get(to_id).unwrap().state == XformState::Active {
            // Survivors must still be safe, and reversible on demand.
            assert!(
                s.find_unsafe().is_empty(),
                "{} → {}: unsafe survivor",
                w.from,
                w.to
            );
            kept.push((w.from, w.to));
            s.undo(to_id, Strategy::Regional)
                .unwrap_or_else(|e| panic!("{} → {}: undo(to): {e}", w.from, w.to));
        }
        // Everything removed: the source must be restored exactly.
        assert_eq!(
            s.source(),
            w.source,
            "{} → {} did not restore",
            w.from,
            w.to
        );
        let now = pivot_lang::interp::run_default(&s.prog, &inputs).unwrap();
        assert_eq!(now, expected);
    }
    // The cascade must fire for most chains; only genuinely
    // still-valid survivors (e.g. an invariant returning into a fused
    // loop) may remain.
    assert!(
        kept.len() <= 4,
        "too many chains kept the enabled transformation: {kept:?}"
    );
}

#[test]
fn heuristic_filter_matches_matrix() {
    let m = default_matrix();
    for from in ALL_KINDS {
        for to in ALL_KINDS {
            assert_eq!(may_affect(&m, from, to), m[from.index()][to.index()]);
        }
    }
}

#[test]
fn spec_generated_checker_agrees_with_handwritten() {
    // Experiment: the specification-derived checker (the paper's future
    // work, Section 6) agrees with the hand-written safety checker wherever
    // it yields a verdict: spec-safe ⇒ checker-safe. (spec-unsafe with
    // checker-safe is allowed: the spec is precondition-literal, while the
    // checker excuses transformation-vouched changes.)
    use pivot_undo::spec::eval_spec;
    use pivot_workload::{prepare, WorkloadCfg};
    for seed in 0..8u64 {
        let cfg = WorkloadCfg {
            fragments: 8,
            noise_ratio: 0.3,
            ..Default::default()
        };
        let p = prepare(seed, &cfg, 12);
        let s = &p.session;
        for r in s.history.active() {
            if let Some(spec_verdict) = eval_spec(&s.prog, &s.rep, r) {
                let hand = pivot_undo::safety::still_safe(&s.prog, &s.rep, &s.log, r);
                if spec_verdict {
                    assert!(hand, "spec says safe but checker disagrees for {:?}", r.id);
                }
            }
        }
    }
}

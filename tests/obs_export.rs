//! Exporter integration test: a [`ScrapeServer`] on an ephemeral port over
//! the global registry, fed by a seeded workload. Two scrapes bracket extra
//! work; the Prometheus exposition must be well formed line by line and
//! every counter must be monotonically non-decreasing between scrapes. The
//! JSON variant must parse and agree on the window length.

use pivot_obs::export::{http_get, ScrapeServer};
use pivot_obs::json;
use pivot_undo::engine::Strategy;
use pivot_workload::{prepare, WorkloadCfg};
use std::collections::HashMap;

/// Apply a seeded workload and undo everything in reverse application
/// order, feeding the global metrics registry.
fn run_workload(seed: u64) {
    let mut prepared = prepare(seed, &WorkloadCfg::default(), 12);
    for &id in prepared.applied.iter().rev() {
        // Cascades may have removed later ids already; that is fine.
        let _ = prepared.session.undo(id, Strategy::Regional);
    }
}

fn is_prom_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate the text exposition format (version 0.0.4) and return the
/// counter series (`name{labels}` → value).
fn validate_exposition(text: &str) -> HashMap<String, u64> {
    let mut typed: HashMap<String, &str> = HashMap::new();
    let mut counters = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE name kind");
            assert!(is_prom_name(name), "bad family name in `{line}`");
            assert!(
                matches!(kind, "counter" | "summary" | "gauge"),
                "unexpected type in `{line}`"
            );
            assert!(
                typed.insert(name.to_owned(), kind).is_none(),
                "family `{name}` TYPEd twice"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP
        }
        let (series, value) = line.rsplit_once(' ').expect("series value");
        let value: u64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-integer sample in `{line}`"));
        let name = series.split('{').next().expect("series name");
        assert!(is_prom_name(name), "bad series name in `{line}`");
        assert!(name.starts_with("pivot_"), "unprefixed series `{name}`");
        if let Some(labels) = series.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "bad label suffix in `{line}`"
                );
            }
        }
        // Every sample belongs to a TYPEd family: either the name itself
        // (counters keep `_total` in their TYPE line) or a summary child
        // (`_sum`/`_count`/quantile series of a typed summary).
        let family_known = typed.contains_key(name)
            || ["_sum", "_count"].iter().any(|suf| {
                name.strip_suffix(suf)
                    .is_some_and(|base| typed.get(base) == Some(&"summary"))
            });
        assert!(family_known, "sample `{series}` precedes its # TYPE line");
        if typed.get(name) == Some(&"counter") {
            counters.insert(series.to_owned(), value);
        }
    }
    assert!(!counters.is_empty(), "no counters exported:\n{text}");
    counters
}

#[test]
fn scrape_twice_over_seeded_workload() {
    run_workload(0xE16);

    let server =
        ScrapeServer::bind("127.0.0.1:0", pivot_obs::metrics::global()).expect("bind ephemeral");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let first = http_get(&addr, "/metrics").expect("first scrape");
    let counters1 = validate_exposition(&first);
    // The workload must actually have shown up.
    for required in [
        "pivot_session_applies_total",
        "pivot_undo_requests_total",
        "pivot_export_scrapes_total",
    ] {
        assert!(
            counters1.contains_key(required),
            "`{required}` missing from exposition:\n{first}"
        );
    }
    assert!(
        first.contains("# TYPE pivot_undo_phase_ns summary"),
        "phase histogram missing:\n{first}"
    );
    assert!(
        first
            .lines()
            .any(|l| { l.starts_with("pivot_undo_phase_ns{") && l.contains("quantile=\"0.95\"") }),
        "windowed quantiles missing:\n{first}"
    );

    // More work between the scrapes: counters may only move up.
    run_workload(0xE17);
    let second = http_get(&addr, "/metrics").expect("second scrape");
    let counters2 = validate_exposition(&second);
    for (series, v1) in &counters1 {
        let v2 = counters2
            .get(series)
            .unwrap_or_else(|| panic!("series `{series}` vanished between scrapes"));
        assert!(v2 >= v1, "counter `{series}` went backwards: {v1} -> {v2}");
    }
    assert!(
        counters2["pivot_session_applies_total"] > counters1["pivot_session_applies_total"],
        "second workload did not register"
    );
    assert!(
        counters2["pivot_export_scrapes_total"] > counters1["pivot_export_scrapes_total"],
        "the scrape counter must count scrapes"
    );

    // The JSON variant parses and agrees on the un-mangled series names.
    let body = http_get(&addr, "/metrics.json").expect("json scrape");
    let v = json::parse(&body).unwrap_or_else(|e| panic!("bad JSON exposition: {e:?}\n{body}"));
    assert!(
        v.get("window_secs")
            .and_then(|w| w.as_int())
            .is_some_and(|w| w > 0),
        "{body}"
    );
    let json_counters = v.get("counters").expect("counters object");
    assert!(
        json_counters
            .get("session.applies")
            .and_then(|c| c.as_int())
            .is_some_and(|c| c as u64 >= counters2["pivot_session_applies_total"]),
        "JSON counters disagree with the text exposition:\n{body}"
    );
    let json_hists = v.get("histograms").expect("histograms object");
    assert!(
        json_hists
            .get("undo.phase_ns{phase=\"undo\"}")
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_int())
            .is_some_and(|c| c > 0),
        "labeled histogram missing from JSON:\n{body}"
    );

    assert_eq!(http_get(&addr, "/healthz").expect("healthz"), "ok\n");
    handle.shutdown();
}

/// The serve daemon's own scrape endpoint: drive a session over the wire,
/// then assert the `serve.*` families show up well formed in the same
/// exposition (they share the process-global registry).
#[test]
fn serve_daemon_scrape_carries_serve_families() {
    use std::io::{BufRead, BufReader, Write};

    let dir = std::env::temp_dir().join(format!("pivot_obs_export_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = pivot_serve::ServeConfig::new(&dir);
    cfg.scrape_addr = Some("127.0.0.1:0".to_string());
    let daemon = pivot_serve::spawn(cfg).expect("spawn daemon");

    // One session, a couple of requests — including a rejected one so the
    // error counter moves.
    let stream = std::net::TcpStream::connect(daemon.tcp_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut req = |line: &str| -> String {
        let mut s = &stream;
        s.write_all(line.as_bytes()).expect("write");
        s.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        reply
    };
    let open = req("{\"req\":\"open\",\"session\":\"metered\",\"source\":\"d = e + f\\nr = e + f\\nwrite r\\nwrite d\\n\"}");
    assert!(open.starts_with("{\"ok\":true"), "{open}");
    let apply = req("{\"req\":\"apply\",\"session\":\"metered\",\"kind\":\"CSE\"}");
    assert!(apply.starts_with("{\"ok\":true"), "{apply}");
    let bad = req("{\"req\":\"fingerprint\",\"session\":\"absent\"}");
    assert!(bad.contains("\"error\":\"unknown_session\""), "{bad}");

    let scrape_addr = daemon.scrape_addr().expect("scrape addr");
    let text = http_get(&scrape_addr, "/metrics").expect("daemon scrape");
    let counters = validate_exposition(&text);
    for required in [
        "pivot_serve_requests_total",
        "pivot_serve_opened_total",
        "pivot_serve_accepted_total",
        "pivot_serve_errors_total",
    ] {
        assert!(
            counters.get(required).is_some_and(|&v| v > 0),
            "`{required}` missing or zero in daemon exposition:\n{text}"
        );
    }
    assert!(
        text.contains("# TYPE pivot_serve_request_ns summary"),
        "request-latency histogram missing:\n{text}"
    );
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

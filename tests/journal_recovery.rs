//! Golden crash-recovery test for the write-ahead session journal.
//!
//! A scripted session (applies, an independent-order undo, a faulted —
//! aborted — undo) runs with a journal attached while we snapshot the
//! source after every committed transaction. The journal file is then
//! truncated at **every byte boundary** and recovered; each prefix must
//! recover, without panicking, to exactly the state reached by the
//! transactions whose commit records survive in that prefix.

use pivot_lang::parser::parse;
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{FaultPlan, Journal, UndoError, XformKind};
use std::path::PathBuf;

const SRC: &str = "d = e + f\nr = e + f\nwrite r\nwrite d\nx = 3 * 4\nwrite x\n";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pivot_journal_recovery");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Run the scripted session; returns the journal bytes and the source
/// snapshot after each committed transaction (snapshots[0] = original).
fn scripted_session() -> (Vec<u8>, Vec<String>) {
    let path = tmp("session.journal");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    let mut snapshots = vec![s.source()];
    let cse = s.apply_kind(XformKind::Cse).expect("e + f recurs");
    snapshots.push(s.source());
    s.apply_kind(XformKind::Cfo).expect("3 * 4 folds");
    snapshots.push(s.source());
    s.undo(cse, Strategy::Regional).unwrap();
    snapshots.push(s.source());
    // A faulted undo: begin + abort in the journal, no state change.
    s.arm_faults(FaultPlan::nth_inverse_action(1));
    let last = *s
        .history
        .active()
        .map(|r| r.id)
        .collect::<Vec<_>>()
        .last()
        .unwrap();
    match s.undo(last, Strategy::Regional) {
        Err(UndoError::RolledBack { .. }) => {}
        other => panic!("expected rollback, got {other:?}"),
    }
    s.disarm_faults();
    let bytes = std::fs::read(&path).unwrap();
    (bytes, snapshots)
}

/// Committed transactions whose commit record fully survives in `prefix`.
/// A final line cut before its newline still counts when the record itself
/// is complete (it ends with `}` and parses), matching recovery: the
/// newline is framing, not part of the durable record.
fn commits_in(prefix: &[u8]) -> usize {
    let text = String::from_utf8_lossy(prefix);
    let segments: Vec<&str> = text.split('\n').collect();
    let last = segments.len().saturating_sub(1);
    segments
        .iter()
        .enumerate()
        .filter(|(i, l)| {
            l.contains("\"rec\":\"commit\"")
                && (*i < last || text.ends_with('\n') || l.ends_with('}'))
        })
        .count()
}

#[test]
fn recovery_is_exact_at_every_truncation_boundary() {
    let (bytes, snapshots) = scripted_session();
    assert!(!bytes.is_empty(), "journal must not be empty");
    assert_eq!(snapshots.len(), 4, "three committed transactions");
    let path = tmp("truncated.journal");
    for len in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let prog = parse(SRC).unwrap();
        let recovery = Session::recover(prog, &path)
            .unwrap_or_else(|e| panic!("truncation at byte {len}: {e}"));
        let want_commits = commits_in(&bytes[..len]);
        assert_eq!(
            recovery.committed, want_commits,
            "truncation at byte {len} replayed the wrong transaction count"
        );
        assert_eq!(
            recovery.session.source(),
            snapshots[want_commits],
            "truncation at byte {len} recovered to the wrong state"
        );
        assert!(
            recovery.session.consistency_violations().is_empty(),
            "truncation at byte {len} left an inconsistent session"
        );
    }
}

#[test]
fn full_journal_recovers_final_state_and_skips_the_abort() {
    let (bytes, snapshots) = scripted_session();
    let path = tmp("full.journal");
    std::fs::write(&path, &bytes).unwrap();
    let recovery = Session::recover(parse(SRC).unwrap(), &path).unwrap();
    assert_eq!(recovery.committed, 3);
    assert_eq!(
        recovery.aborted, 1,
        "the faulted undo must appear as an abort"
    );
    assert_eq!(recovery.discarded, 0);
    assert_eq!(recovery.session.source(), *snapshots.last().unwrap());
}

/// Run the scripted session, compact mid-script, and keep going; returns
/// the journal bytes, the end of the checkpoint record within them, and
/// source snapshots after each post-checkpoint committed transaction
/// (snapshots[0] = the checkpointed state).
fn compacted_session() -> (Vec<u8>, usize, Vec<String>) {
    let path = tmp("compacted.journal");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    let cse = s.apply_kind(XformKind::Cse).expect("e + f recurs");
    s.apply_kind(XformKind::Cfo).expect("3 * 4 folds");
    assert!(s.compact_journal().unwrap(), "journal attached");
    let mut snapshots = vec![s.source()];
    s.undo(cse, Strategy::Regional).unwrap();
    snapshots.push(s.source());
    let bytes = std::fs::read(&path).unwrap();
    let ckpt_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("checkpoint line")
        + 1;
    assert!(
        bytes.starts_with(b"{\"rec\":\"checkpoint\""),
        "compaction must leave a checkpoint record first"
    );
    (bytes, ckpt_end, snapshots)
}

#[test]
fn compacted_journal_recovers_at_every_truncation_boundary() {
    let (bytes, ckpt_end, snapshots) = compacted_session();
    let path = tmp("compacted_truncated.journal");
    for len in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let prog = parse(SRC).unwrap();
        let result = Session::recover(prog, &path);
        // The checkpoint record parses once its closing brace is present;
        // the trailing newline is framing, not part of the record.
        if len < 10 {
            // So short a stub is indistinguishable from a torn first
            // `begin` (all records share the `{"rec":"` prefix, `commit`
            // one byte more) and compaction's atomic rewrite can never
            // crash into this shape, so it is tolerated like any torn
            // ordinary record: a fresh, untransformed session.
            let r = result.unwrap_or_else(|e| panic!("stub of {len} bytes: {e}"));
            assert_eq!(r.committed, 0, "stub of {len} bytes");
            assert!(!r.from_checkpoint, "stub of {len} bytes");
            continue;
        }
        if len < ckpt_end - 1 {
            // Truncation *inside* the checkpoint record. The checkpoint is
            // the only carrier of the compacted-away history, so a torn
            // one is unrecoverable corruption: it must be *detected*, not
            // silently treated as an empty or shorter journal.
            let err = match result {
                Err(e) => e.to_string(),
                Ok(r) => panic!(
                    "truncation at byte {len} (inside the checkpoint) must \
                     fail, but recovered {} txns",
                    r.committed
                ),
            };
            assert!(
                err.contains("checkpoint"),
                "truncation at byte {len}: error must name the checkpoint, \
                 got: {err}"
            );
            continue;
        }
        // At or past the checkpoint: snapshot restore + surviving tail.
        let r = result.unwrap_or_else(|e| panic!("truncation at byte {len}: {e}"));
        assert!(r.from_checkpoint, "truncation at byte {len}");
        let want_commits = commits_in(&bytes[..len]);
        assert_eq!(
            r.committed, want_commits,
            "truncation at byte {len} replayed the wrong transaction count"
        );
        assert_eq!(
            r.session.source(),
            snapshots[want_commits],
            "truncation at byte {len} recovered to the wrong state"
        );
        assert!(
            r.session.consistency_violations().is_empty(),
            "truncation at byte {len} left an inconsistent session"
        );
    }
}

#[test]
fn compacted_recovery_preserves_undoability_of_checkpointed_history() {
    let (bytes, _, _) = compacted_session();
    let path = tmp("compacted_resume.journal");
    std::fs::write(&path, &bytes).unwrap();
    let recovery = Session::recover(parse(SRC).unwrap(), &path).unwrap();
    assert!(recovery.from_checkpoint);
    let mut s = recovery.session;
    s.set_journal(Journal::open(&path).unwrap());
    // The transformation applied *before* the checkpoint is still undoable
    // after a snapshot-based recovery.
    let remaining: Vec<_> = s.history.active().map(|r| r.id).collect();
    assert!(!remaining.is_empty(), "cfo survives the checkpoint");
    for id in remaining {
        match s.undo(id, Strategy::Regional) {
            Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
            Err(e) => panic!("undo {id}: {e}"),
        }
    }
    assert_eq!(s.source(), Session::from_source(SRC).unwrap().source());
    s.assert_consistent();
}

/// Like [`compacted_session`], but the checkpoint record is serialized
/// while the session's state is *structurally shared*: clones and held
/// transaction checkpoints keep every arena chunk and the rep referenced
/// from several owners when compaction walks them. The journal bytes a
/// shared writer produces must be byte-identical to the unshared writer's
/// — and therefore recover identically at every truncation boundary.
fn shared_compacted_session() -> (Vec<u8>, usize, Vec<String>) {
    let path = tmp("shared_compacted.journal");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    let cse = s.apply_kind(XformKind::Cse).expect("e + f recurs");
    s.apply_kind(XformKind::Cfo).expect("3 * 4 folds");
    // Force sharing: a live clone and a held checkpoint alias every chunk
    // the compaction-time serializer reads.
    let held_clone = s.clone();
    let held_cp = s.checkpoint();
    assert!(s.compact_journal().unwrap(), "journal attached");
    let mut snapshots = vec![s.source()];
    s.undo(cse, Strategy::Regional).unwrap();
    snapshots.push(s.source());
    drop(held_cp);
    drop(held_clone);
    let bytes = std::fs::read(&path).unwrap();
    let ckpt_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("checkpoint line")
        + 1;
    assert!(
        bytes.starts_with(b"{\"rec\":\"checkpoint\""),
        "compaction must leave a checkpoint record first"
    );
    (bytes, ckpt_end, snapshots)
}

#[test]
fn shared_snapshot_checkpoint_bytes_match_unshared_writer() {
    let (shared_bytes, shared_ckpt_end, _) = shared_compacted_session();
    let (bytes, ckpt_end, _) = compacted_session();
    assert_eq!(
        shared_ckpt_end, ckpt_end,
        "checkpoint records differ in length"
    );
    assert_eq!(
        shared_bytes, bytes,
        "a shared-snapshot writer must serialize byte-identical journals"
    );
}

#[test]
fn shared_snapshot_checkpoint_recovers_at_every_truncation_boundary() {
    let (bytes, ckpt_end, snapshots) = shared_compacted_session();
    let path = tmp("shared_compacted_truncated.journal");
    for len in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        let prog = parse(SRC).unwrap();
        let result = Session::recover(prog, &path);
        if len < 10 {
            // Same short-stub tolerance as the unshared sweep: the prefix
            // is indistinguishable from a torn ordinary record.
            let r = result.unwrap_or_else(|e| panic!("stub of {len} bytes: {e}"));
            assert_eq!(r.committed, 0, "stub of {len} bytes");
            assert!(!r.from_checkpoint, "stub of {len} bytes");
            continue;
        }
        if len < ckpt_end - 1 {
            // A torn checkpoint is unrecoverable corruption and must be
            // detected, exactly as with an unshared writer.
            let err = match result {
                Err(e) => e.to_string(),
                Ok(r) => panic!(
                    "truncation at byte {len} (inside the checkpoint) must \
                     fail, but recovered {} txns",
                    r.committed
                ),
            };
            assert!(
                err.contains("checkpoint"),
                "truncation at byte {len}: error must name the checkpoint, \
                 got: {err}"
            );
            continue;
        }
        let r = result.unwrap_or_else(|e| panic!("truncation at byte {len}: {e}"));
        assert!(r.from_checkpoint, "truncation at byte {len}");
        let want_commits = commits_in(&bytes[..len]);
        assert_eq!(
            r.committed, want_commits,
            "truncation at byte {len} replayed the wrong transaction count"
        );
        assert_eq!(
            r.session.source(),
            snapshots[want_commits],
            "truncation at byte {len} recovered to the wrong state"
        );
        assert!(
            r.session.consistency_violations().is_empty(),
            "truncation at byte {len} left an inconsistent session"
        );
    }
}

#[test]
fn recovered_session_continues_journaling_and_undoing() {
    let (bytes, _) = scripted_session();
    let path = tmp("resume.journal");
    std::fs::write(&path, &bytes).unwrap();
    let recovery = Session::recover(parse(SRC).unwrap(), &path).unwrap();
    let mut s = recovery.session;
    // The recovered session is a normal session: attach the journal again
    // and keep going; transaction ids continue past the replayed ones.
    s.set_journal(Journal::open(&path).unwrap());
    let remaining: Vec<_> = s.history.active().map(|r| r.id).collect();
    for id in remaining {
        match s.undo(id, Strategy::Regional) {
            Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
            Err(e) => panic!("undo {id}: {e}"),
        }
    }
    assert_eq!(s.source(), Session::from_source(SRC).unwrap().source());
    s.assert_consistent();
    // And the re-attached journal recovers to the same final (empty) state.
    let r2 = Session::recover(parse(SRC).unwrap(), &path).unwrap();
    assert_eq!(r2.session.source(), s.source());
    assert!(r2.session.history.active().next().is_none());
}

/// A crash mid-append leaves a torn (newline-less) prefix of a begin
/// record at the tail. Recovery must discard exactly that tail; a journal
/// re-attached *after* the torn bytes (the daemon's restart path) must
/// keep appending records that the next recovery replays — the tear cannot
/// poison transactions committed after it. (Promoted from the PR-8 review
/// probe `tmp_review_probe.rs`.)
#[test]
fn append_after_torn_tail_keeps_later_commits() {
    let path = tmp("torn_append.journal");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    s.apply_kind(XformKind::Cse).expect("e + f recurs");
    let after_cse = s.source();
    drop(s);

    // Simulate the crash: a strict prefix of a begin record, no newline
    // (the same tear servecheck's kill points produce).
    let text = std::fs::read_to_string(&path).unwrap();
    let begin = text
        .lines()
        .find(|l| l.contains("\"rec\":\"begin\""))
        .expect("journal has a begin record")
        .to_string();
    let mut bytes = text.into_bytes();
    bytes.extend_from_slice(&begin.as_bytes()[..begin.len() / 2]);
    std::fs::write(&path, &bytes).unwrap();

    // First recovery: the torn tail is discarded, the committed apply is
    // replayed.
    let rec = Session::recover(parse(SRC).unwrap(), &path).expect("first recovery");
    assert_eq!(rec.committed, 1);
    assert_eq!(rec.discarded, 1, "the torn begin is a discarded tail");
    assert_eq!(rec.session.source(), after_cse);

    // Restart path: re-attach the journal — `Journal::open` truncates the
    // never-durable torn tail so fresh records start on a clean line — and
    // commit one more transaction.
    let mut s2 = rec.session;
    s2.set_journal(Journal::open(&path).unwrap());
    s2.apply_kind(XformKind::Cfo).expect("3 * 4 folds");
    let after_cfo = s2.source();
    drop(s2);

    // Second recovery: both committed transactions replay; the tear in the
    // middle stays invisible.
    let r2 = Session::recover(parse(SRC).unwrap(), &path).expect("second recovery");
    assert_eq!(r2.committed, 2, "commit after the tear must survive");
    assert_eq!(r2.session.source(), after_cfo);
    assert!(r2.session.consistency_violations().is_empty());
}

//! Experiment E9: edit-driven invalidation. After an edit, selective
//! removal (a) removes every unsafe transformation, (b) leaves a program
//! semantically equal to the edited source, and (c) leaves all survivors
//! safe. Property-tested against generated workloads and random edits.

use pivot_lang::interp;
use pivot_undo::engine::Strategy;
use pivot_workload::{gen_edit, gen_inputs, prepare, WorkloadCfg};
use proptest::prelude::*;

fn cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 8,
        noise_ratio: 0.3,
        ..Default::default()
    }
}

/// Apply an `Insert` edit to a clone of the pre-edit source program. The
/// intended semantics of "user edits the transformed view" is the source
/// with the same insertion — computable when the edit anchors on source
/// statements (the aimed edits of `gen_edit` do).
fn edit_source(
    source: &pivot_lang::Program,
    edit: &pivot_undo::Edit,
) -> Option<pivot_lang::Program> {
    let pivot_undo::Edit::Insert { src, at } = edit else {
        return None;
    };
    // Only anchors shared by both arenas are faithfully replayable.
    match at.anchor {
        pivot_lang::AnchorPos::Start => {}
        pivot_lang::AnchorPos::After(s) => {
            if s.index() >= source.stmt_arena_len() {
                return None;
            }
        }
    }
    let mut p = source.clone();
    let stmts = pivot_lang::parser::parse_stmts_into(&mut p, src).ok()?;
    let mut loc = *at;
    for s in stmts {
        p.attach(s, loc).ok()?;
        loc = pivot_lang::Loc::after(loc.parent, s);
    }
    Some(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn selective_removal_is_sound_and_complete(seed in 0u64..200, eseed in 0u64..50) {
        let mut p = prepare(seed, &cfg(), 12);
        prop_assume!(p.applied.len() >= 4);
        let source = p.session.original.clone();
        let edit = gen_edit(&p.session, eseed);
        // Intended semantics: the pre-edit source with the same insertion.
        let intended = edit_source(&source, &edit);
        p.session.edit(&edit).unwrap();
        let inputs = gen_inputs(seed, 96);
        p.session.remove_unsafe(Strategy::Regional);
        // (a) nothing unsafe remains.
        prop_assert!(p.session.find_unsafe().is_empty(),
            "unsafe transformations remain after removal");
        // (b) semantics match the edited *source* (when the edit anchors on
        // source statements — otherwise the oracle is undefined and we only
        // check (a) and (c)).
        if let Some(intended) = intended {
            if let Ok(expected) = interp::run_default(&intended, &inputs) {
                let got = interp::run_default(&p.session.prog, &inputs).unwrap();
                prop_assert_eq!(got, expected, "selective removal changed semantics");
            }
        }
        // (c) consistency.
        p.session.assert_consistent();
    }

    #[test]
    fn parallel_and_sequential_unsafe_screens_agree(seed in 0u64..100, eseed in 0u64..50) {
        let mut p = prepare(seed, &cfg(), 12);
        prop_assume!(p.applied.len() >= 4);
        let edit = gen_edit(&p.session, eseed);
        p.session.edit(&edit).unwrap();
        let seq = p.session.find_unsafe();
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&seq, &p.session.find_unsafe_parallel(threads));
        }
    }

    #[test]
    fn baseline_and_selective_agree_semantically(seed in 0u64..80, eseed in 0u64..40) {
        // Both strategies must produce semantically identical programs
        // (they may differ syntactically in which optimizations remain).
        let mut a = prepare(seed, &cfg(), 12);
        prop_assume!(a.applied.len() >= 4);
        let edit = gen_edit(&a.session, eseed);
        a.session.edit(&edit).unwrap();
        a.session.remove_unsafe(Strategy::Regional);

        let mut b = prepare(seed, &cfg(), 12);
        let edit = gen_edit(&b.session, eseed);
        b.session.edit(&edit).unwrap();
        b.session.revert_all_and_redo();

        let inputs = gen_inputs(seed, 96);
        let oa = interp::run_default(&a.session.prog, &inputs).unwrap();
        let ob = interp::run_default(&b.session.prog, &inputs).unwrap();
        prop_assert_eq!(oa, ob, "selective vs revert-all semantics diverged");
    }
}

#[test]
fn harmless_edit_invalidates_nothing() {
    let mut p = prepare(3, &cfg(), 12);
    let n = p.session.history.active_len();
    assert!(n >= 4);
    // Append a write of a fresh variable at the end: touches nothing.
    let last = *p.session.prog.body.last().unwrap();
    let edit = pivot_undo::Edit::Insert {
        src: "zzz_fresh = 1\nwrite zzz_fresh\n".into(),
        at: pivot_lang::Loc::after(pivot_lang::Parent::Root, last),
    };
    p.session.edit(&edit).unwrap();
    assert!(p.session.find_unsafe().is_empty());
    let report = p.session.remove_unsafe(Strategy::Regional);
    assert!(report.removed.is_empty());
    assert!(report.retired.is_empty());
    assert_eq!(
        p.session.history.active_len(),
        n,
        "all transformations survive"
    );
}

//! Observability integration tests: the JSONL trace schema over the paper's
//! Figure 1 cascade, the provenance explanation trees, and the invariance of
//! engine behaviour under the no-op tracer.

use pivot_obs::{json, CauseKind, Phase, PhaseProfiler, Recorder, RingConfig, RingTracer};
use pivot_undo::engine::{Session, Strategy, UndoReport};
use pivot_undo::{XformId, XformKind};
use std::collections::HashMap;
use std::sync::Arc;

const FIG1: &str = "\
D = E + F
C = 1
do i = 1, 100
  do j = 1, 50
    A(j) = B(j) + C
    R(i, j) = E + F
  enddo
enddo
";

/// Figure 1 sequence: cse(1) ctp(2) inx(3) icm(4).
fn figure1_session() -> (Session, [XformId; 4]) {
    let mut s = Session::from_source(FIG1).unwrap();
    let cse = s.apply_kind(XformKind::Cse).expect("cse applies");
    let ctp = s.apply_kind(XformKind::Ctp).expect("ctp applies");
    let inx = s.apply_kind(XformKind::Inx).expect("inx applies");
    let icm = s.apply_kind(XformKind::Icm).expect("icm applies");
    (s, [cse, ctp, inx, icm])
}

/// Golden schema test: undoing INX in Figure 1 (which cascades ICM) must
/// produce a well-formed JSONL trace — every line parses, sequence numbers
/// and timestamps are monotone, every span start has exactly one matching
/// end, and phase names come from the published set.
#[test]
fn figure1_inx_trace_is_schema_valid() {
    let (mut s, [_, _, inx, _]) = figure1_session();
    let (rec, buf) = Recorder::in_memory();
    let rec = Arc::new(rec);
    s.set_tracer(rec.clone());
    s.undo(inx, Strategy::Regional).unwrap();
    rec.flush().unwrap();

    let text = buf.contents();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 8, "expected a real trace, got:\n{text}");

    let valid_phases: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
    let mut last_seq: i64 = -1;
    let mut last_t: i64 = -1;
    let mut starts: HashMap<i64, i64> = HashMap::new(); // span -> start seq
    let mut ended: HashMap<i64, i64> = HashMap::new();
    let mut phases_seen: Vec<String> = Vec::new();
    for line in &lines {
        let obj = json::parse(line).unwrap_or_else(|e| panic!("bad JSON line `{line}`: {e:?}"));
        let ev = obj.get("ev").and_then(|v| v.as_str()).expect("ev field");
        assert!(
            matches!(ev, "span_start" | "span_end" | "event"),
            "unknown ev `{ev}`"
        );
        let seq = obj.get("seq").and_then(|v| v.as_int()).expect("seq field");
        assert_eq!(seq, last_seq + 1, "seq must be dense and monotone");
        last_seq = seq;
        let t = obj
            .get("t_us")
            .and_then(|v| v.as_int())
            .expect("t_us field");
        assert!(t >= last_t, "t_us must be monotone");
        last_t = t;
        if ev != "event" {
            let span = obj
                .get("span")
                .and_then(|v| v.as_int())
                .expect("span id on spans");
            let phase = obj
                .get("phase")
                .and_then(|v| v.as_str())
                .expect("phase on spans");
            assert!(valid_phases.contains(&phase), "unknown phase `{phase}`");
            if ev == "span_start" {
                assert!(
                    starts.insert(span, seq).is_none(),
                    "span {span} started twice"
                );
                phases_seen.push(phase.to_owned());
            } else {
                let started = starts.get(&span).copied().expect("end without start");
                assert!(seq > started, "span {span} ends before it starts");
                assert!(ended.insert(span, seq).is_none(), "span {span} ended twice");
            }
        }
    }
    assert_eq!(starts.len(), ended.len(), "every span start must be ended");

    // The cascade exercises every phase except the candidate safety check
    // (ICM cascades through the *affecting* chase, and nothing active
    // follows INX afterwards — the DCE-chain test below covers
    // `safety_check`).
    for p in Phase::ALL {
        if p == Phase::SafetyCheck {
            continue;
        }
        assert!(
            phases_seen.iter().any(|n| n == p.name()),
            "phase `{}` missing from trace:\n{text}",
            p.name()
        );
    }

    // The root span carries the request metadata.
    let root = json::parse(lines[0]).unwrap();
    assert_eq!(root.get("phase").and_then(|v| v.as_str()), Some("undo"));
    assert_eq!(root.get("xform").and_then(|v| v.as_int()), Some(3));
    assert_eq!(root.get("kind").and_then(|v| v.as_str()), Some("INX"));
    assert_eq!(
        root.get("strategy").and_then(|v| v.as_str()),
        Some("regional")
    );
    // Its end reports both removals (INX and the cascaded ICM).
    let last = json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(last.get("phase").and_then(|v| v.as_str()), Some("undo"));
    assert_eq!(last.get("ok").and_then(|v| v.as_bool()), Some(true));
    let undone = last
        .get("undone")
        .and_then(|v| v.as_array())
        .expect("undone list");
    assert_eq!(undone.len(), 2, "{text}");
}

/// Undoing INX cascades ICM as an *affecting* transformation (Section 5.2):
/// the explanation tree must say so, with the causing action attached.
#[test]
fn figure1_inx_explanation_has_affecting_icm() {
    let (mut s, [_, _, inx, icm]) = figure1_session();
    s.undo(inx, Strategy::Regional).unwrap();

    let tree = s.explain(inx).expect("inx was undone");
    assert_eq!(tree.root.xform, inx.0);
    assert_eq!(tree.root.kind, "inx");
    assert_eq!(tree.root.cause, CauseKind::Requested);
    assert_eq!(tree.size(), 2, "exactly INX and ICM were removed");

    let child = tree.find(icm.0).expect("icm is in the cascade");
    assert_eq!(child.kind, "icm");
    assert_eq!(child.cause.tag(), "affecting");
    match &child.cause {
        CauseKind::Affecting {
            disabling,
            causing_action,
        } => {
            assert!(!disabling.is_empty());
            assert!(
                causing_action.contains(" t"),
                "causing action names a stamped action: {causing_action}"
            );
        }
        other => panic!("expected affecting cause, got {other:?}"),
    }

    // Both lookups resolve to the same tree; the render is the tree shape.
    assert!(std::ptr::eq(s.explain(icm).unwrap(), tree));
    let text = tree.render();
    assert!(
        text.starts_with(&format!("#{} inx (requested by user)\n", inx.0)),
        "{text}"
    );
    assert!(
        text.contains(&format!("└─ #{} icm (affecting:", icm.0)),
        "{text}"
    );
}

/// Undoing the first DCE of a dead chain revives a use of the second's
/// target, so the second cascades as an *affected* transformation: a region
/// member whose safety predicate failed. (The dead statement sits at the
/// end so its restore anchor survives — otherwise the second DCE blocks the
/// restore and cascades through the affecting chase instead.)
#[test]
fn dce_chain_explanation_has_affected_edge() {
    let mut s = Session::from_source("x = 1\nwrite 0\ny = x\n").unwrap();
    let d1 = s.apply_kind(XformKind::Dce).expect("y = x is dead");
    let d2 = s.apply_kind(XformKind::Dce).expect("x = 1 becomes dead");
    assert_eq!(s.source(), "write 0\n");

    let (rec, buf) = Recorder::in_memory();
    s.set_tracer(Arc::new(rec));
    let report = s.undo(d1, Strategy::Regional).unwrap();
    assert!(report.undone.contains(&d2), "d2 must cascade");
    assert!(report.safety_checks >= 1, "d2 was re-checked, not chased");

    let tree = s.explain(d1).expect("d1 was undone");
    assert_eq!(tree.root.cause, CauseKind::Requested);
    let child = tree.find(d2.0).expect("d2 cascaded");
    assert_eq!(child.cause.tag(), "affected");
    match &child.cause {
        CauseKind::Affected {
            region_member,
            heuristic_marked,
            failed_predicate,
        } => {
            assert!(
                *region_member,
                "the revived use lies in the affected region"
            );
            assert!(*heuristic_marked, "DCE reverse-destroys DCE in Table 4");
            assert_eq!(failed_predicate, "target dead at original location");
        }
        other => panic!("expected affected cause, got {other:?}"),
    }
    assert!(tree.render().contains("[in region]"), "{}", tree.render());

    // The trace shows the failed safety check that triggered the cascade.
    let trace = buf.contents();
    let failed_check = trace.lines().map(|l| json::parse(l).unwrap()).any(|o| {
        o.get("phase").and_then(|v| v.as_str()) == Some("safety_check")
            && o.get("ev").and_then(|v| v.as_str()) == Some("span_end")
            && o.get("safe").and_then(|v| v.as_bool()) == Some(false)
    });
    assert!(failed_check, "{trace}");

    // Transformations never undone have no explanation tree.
    assert!(s.explain(XformId(99)).is_none());
}

/// An incremental refresh that bails to a batch rebuild must never be
/// silent: it bumps the `rep.incr.fallback` counter and emits an
/// `incr_fallback` event carrying the reason. Inserting a do-loop changes
/// the CFG shape, which is the deterministic fallback trigger.
#[test]
fn incremental_fallback_is_counted_and_traced() {
    use pivot_undo::{Edit, RepMode};

    let mut s = Session::from_source("x = 1\nwrite x\n").unwrap();
    s.set_rep_mode(RepMode::Incremental);
    let (rec, buf) = Recorder::in_memory();
    let rec = Arc::new(rec);
    s.set_tracer(rec.clone());

    let before = pivot_obs::metrics::global()
        .counter("rep.incr.fallback")
        .get();
    let anchor = s.prog.body[0];
    s.edit(&Edit::Insert {
        src: "do k = 1, 3\n  y = k\nenddo\n".to_owned(),
        at: pivot_lang::Loc::after(pivot_lang::Parent::Root, anchor),
    })
    .expect("loop insert applies");
    rec.flush().unwrap();

    let after = pivot_obs::metrics::global()
        .counter("rep.incr.fallback")
        .get();
    assert!(after > before, "fallback counter must increase");

    // Golden schema: the event line parses, is a point event (no span or
    // phase fields), and names the machine-readable reason.
    let text = buf.contents();
    let fallback = text
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad JSON line `{l}`: {e:?}")))
        .find(|o| o.get("name").and_then(|v| v.as_str()) == Some("incr_fallback"))
        .unwrap_or_else(|| panic!("no incr_fallback event in trace:\n{text}"));
    assert_eq!(fallback.get("ev").and_then(|v| v.as_str()), Some("event"));
    assert_eq!(
        fallback.get("reason").and_then(|v| v.as_str()),
        Some("cfg_shape_changed")
    );
    assert!(fallback.get("seq").and_then(|v| v.as_int()).is_some());
    assert!(fallback.get("t_us").and_then(|v| v.as_int()).is_some());
    assert!(fallback.get("span").is_none(), "point events carry no span");

    // A shape-preserving follow-up (RHS rewrite) stays incremental: no
    // second fallback event, and the update counter moves instead.
    let updates_before = s.rep.incr_updates;
    s.edit(&Edit::ReplaceRhs {
        stmt: anchor,
        src: "7".to_owned(),
    })
    .expect("rhs edit applies");
    assert_eq!(s.rep.incr_updates, updates_before + 1);
    rec.flush().unwrap();
    let fallbacks = buf
        .contents()
        .lines()
        .filter(|l| l.contains("incr_fallback"))
        .count();
    assert_eq!(fallbacks, 1, "shape-preserving edit must not fall back");
}

/// `Session::audit()` publishes to the global metrics registry and, with a
/// live tracer, emits one `audit_finding` point event per finding matching
/// the golden schema. On a clean session the audit is a pure observer:
/// no findings, no trace output, and no session state change.
#[test]
fn audit_findings_are_traced_and_counted() {
    use pivot_audit::SessionAuditExt;
    use pivot_undo::XformState;

    let m = pivot_obs::metrics::global();
    let runs0 = m.counter("audit.runs").get();
    let rules0 = m.counter("audit.rules").get();
    let found0 = m.counter("audit.findings").get();

    // Clean session: metrics move, the trace stays silent, state intact.
    let (mut s, [cse, ..]) = figure1_session();
    let (rec, buf) = Recorder::in_memory();
    let rec = Arc::new(rec);
    s.set_tracer(rec.clone());
    let src_before = s.source();
    let log_before = s.log.actions.len();
    let history_before = s.history.records.len();
    let report = s.audit();
    rec.flush().unwrap();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(s.source(), src_before, "audit must not touch the program");
    assert_eq!(
        s.log.actions.len(),
        log_before,
        "audit must not touch the log"
    );
    assert_eq!(s.history.records.len(), history_before);
    assert!(buf.is_empty(), "a clean audit must emit no trace events");
    assert_eq!(m.counter("audit.runs").get(), runs0 + 1);
    assert!(m.counter("audit.rules").get() >= rules0 + report.rules_run);

    // Poison: mark CSE undone while its actions stay live in the log.
    s.history.get_mut(cse).expect("cse exists").state = XformState::Undone;
    let report = s.audit();
    rec.flush().unwrap();
    assert!(!report.is_clean(), "PV006 poison must be found");
    assert_eq!(m.counter("audit.runs").get(), runs0 + 2);
    assert!(m.counter("audit.findings").get() >= found0 + report.findings.len() as u64);

    // Golden schema: one audit_finding point event per finding, in report
    // order — each parses, is a point event (no span/phase), and carries
    // code/severity/family/site alongside the envelope fields.
    let text = buf.contents();
    let events: Vec<_> = text
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad JSON line `{l}`: {e:?}")))
        .filter(|o| o.get("name").and_then(|v| v.as_str()) == Some("audit_finding"))
        .collect();
    assert_eq!(events.len(), report.findings.len(), "{text}");
    for (ev, f) in events.iter().zip(&report.findings) {
        assert_eq!(ev.get("ev").and_then(|v| v.as_str()), Some("event"));
        assert!(ev.get("span").is_none(), "point events carry no span");
        assert!(ev.get("phase").is_none(), "point events carry no phase");
        assert_eq!(ev.get("code").and_then(|v| v.as_str()), Some(f.code));
        assert_eq!(
            ev.get("severity").and_then(|v| v.as_str()),
            Some(f.severity.name())
        );
        assert_eq!(
            ev.get("family").and_then(|v| v.as_int()),
            Some(f.family.number() as i64)
        );
        assert_eq!(
            ev.get("site").and_then(|v| v.as_str()),
            Some(f.span.render().as_str())
        );
        assert!(ev.get("seq").and_then(|v| v.as_int()).is_some());
        assert!(ev.get("t_us").and_then(|v| v.as_int()).is_some());
    }
}

/// The default (no-op) tracer must not change engine behaviour: identical
/// removal sets and identical work counters, and nothing is ever emitted.
#[test]
fn noop_tracer_emits_nothing_and_preserves_counters() {
    fn counters(r: &UndoReport) -> (Vec<XformId>, u64, u64, u64, u64) {
        (
            r.undone.clone(),
            r.candidates_considered,
            r.safety_checks,
            r.reversibility_checks,
            r.affecting_chases,
        )
    }

    let (mut plain, [_, _, inx, _]) = figure1_session();
    assert!(
        !plain.tracer().enabled(),
        "sessions default to the no-op tracer"
    );
    let r_plain = plain.undo(inx, Strategy::Regional).unwrap();

    let (mut traced, [_, _, inx2, _]) = figure1_session();
    let (rec, buf) = Recorder::in_memory();
    traced.set_tracer(Arc::new(rec));
    let r_traced = traced.undo(inx2, Strategy::Regional).unwrap();

    assert_eq!(counters(&r_plain), counters(&r_traced));
    assert_eq!(plain.source(), traced.source());
    assert!(!buf.is_empty(), "the recorder session must have traced");

    // A recorder that is never attached sees nothing from an untraced run.
    let (rec, silent) = Recorder::in_memory();
    let _keep_alive = rec;
    let (mut s, [cse, ..]) = figure1_session();
    s.undo(cse, Strategy::Regional).unwrap();
    assert!(silent.is_empty());
}

/// An attached [`PhaseProfiler`] with a tiny threshold turns every undo
/// into a `slow_op` point event matching the golden schema, and
/// [`PhaseProfiler::emit`] writes one schema-valid `profile` event per
/// (kind × phase) cell of the aggregated profile.
#[test]
fn profiler_slow_op_and_profile_events_match_schema() {
    let (mut s, [_, _, inx, _]) = figure1_session();
    let (rec, buf) = Recorder::in_memory();
    let rec = Arc::new(rec);
    s.set_tracer(rec.clone());
    // 1 ns threshold: every real undo is "slow".
    let profiler = Arc::new(PhaseProfiler::new(1));
    s.set_profiler(profiler.clone());
    let report = s.undo(inx, Strategy::Regional).unwrap();
    rec.flush().unwrap();

    let text = buf.contents();
    let slow = text
        .lines()
        .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad JSON line `{l}`: {e:?}")))
        .find(|o| o.get("name").and_then(|v| v.as_str()) == Some("slow_op"))
        .unwrap_or_else(|| panic!("no slow_op event in trace:\n{text}"));
    assert_eq!(slow.get("ev").and_then(|v| v.as_str()), Some("event"));
    assert!(slow.get("span").is_none(), "point events carry no span");
    assert_eq!(slow.get("kind").and_then(|v| v.as_str()), Some("inx"));
    assert_eq!(slow.get("threshold_ns").and_then(|v| v.as_int()), Some(1));
    let total = slow
        .get("total_ns")
        .and_then(|v| v.as_int())
        .expect("total_ns");
    assert_eq!(total as u64, report.phase_ns.total());
    let hot = slow
        .get("hot_phase")
        .and_then(|v| v.as_str())
        .expect("hot_phase");
    assert!(
        Phase::ALL.iter().any(|p| p.name() == hot),
        "unknown hot_phase `{hot}`"
    );
    let hot_ns = slow.get("hot_ns").and_then(|v| v.as_int()).expect("hot_ns");
    assert!(
        hot_ns > 0 && hot_ns <= total,
        "hot {hot_ns} vs total {total}"
    );

    // The aggregated profile replays as `profile` events.
    let (rec2, buf2) = Recorder::in_memory();
    profiler.emit(&rec2);
    let text = buf2.contents();
    let mut cells = 0usize;
    for line in text.lines() {
        let o = json::parse(line).unwrap_or_else(|e| panic!("bad JSON line `{line}`: {e:?}"));
        assert_eq!(o.get("ev").and_then(|v| v.as_str()), Some("event"));
        assert_eq!(o.get("name").and_then(|v| v.as_str()), Some("profile"));
        assert!(o.get("span").is_none(), "point events carry no span");
        assert_eq!(o.get("kind").and_then(|v| v.as_str()), Some("inx"));
        let phase = o.get("phase").and_then(|v| v.as_str()).expect("phase");
        assert!(
            Phase::ALL.iter().any(|p| p.name() == phase),
            "unknown phase `{phase}`"
        );
        assert!(o
            .get("count")
            .and_then(|v| v.as_int())
            .is_some_and(|c| c >= 1));
        let p50 = o.get("p50_ns").and_then(|v| v.as_int()).expect("p50_ns");
        let p95 = o.get("p95_ns").and_then(|v| v.as_int()).expect("p95_ns");
        let max = o.get("max_ns").and_then(|v| v.as_int()).expect("max_ns");
        assert!(p50 <= p95 && p95 <= max, "quantiles out of order in {line}");
        assert!(o.get("mean_ns").and_then(|v| v.as_int()).is_some());
        cells += 1;
    }
    assert!(cells >= 3, "expected a multi-phase profile:\n{text}");
}

/// Under aggressive sampling the ring drops whole units, keeps retained
/// spans balanced, and accounts for every loss with a `trace_drop`
/// summary event matching the golden schema.
#[test]
fn ring_sampling_emits_schema_valid_trace_drop() {
    let ring = Arc::new(RingTracer::new(RingConfig {
        capacity: 1024,
        head: 1,
        rate: 1_000_000, // after the head, drop everything
        report_every: 0,
    }));
    for _ in 0..5 {
        let (mut s, [_, _, inx, _]) = figure1_session();
        s.set_tracer(ring.clone());
        s.undo(inx, Strategy::Regional).unwrap();
    }
    assert_eq!(ring.dropped_units(), 4, "head keeps only the first undo");
    assert!(ring.dropped_lines() > 0);

    let text = ring.contents();
    let mut open: HashMap<i64, ()> = HashMap::new();
    let mut drops = Vec::new();
    for line in text.lines() {
        let o = json::parse(line).unwrap_or_else(|e| panic!("bad JSON line `{line}`: {e:?}"));
        match o.get("ev").and_then(|v| v.as_str()).expect("ev") {
            "span_start" => {
                open.insert(o.get("span").and_then(|v| v.as_int()).unwrap(), ());
            }
            "span_end" => {
                assert!(
                    open.remove(&o.get("span").and_then(|v| v.as_int()).unwrap())
                        .is_some(),
                    "sampling must never orphan a span end: {line}"
                );
            }
            "event" => {
                if o.get("name").and_then(|v| v.as_str()) == Some("trace_drop") {
                    drops.push(o);
                }
            }
            other => panic!("unknown ev `{other}`"),
        }
    }
    assert!(open.is_empty(), "sampling must never orphan a span start");
    let drop = drops
        .last()
        .unwrap_or_else(|| panic!("no trace_drop:\n{text}"));
    assert!(drop.get("span").is_none(), "point events carry no span");
    assert_eq!(drop.get("dropped_units").and_then(|v| v.as_int()), Some(4));
    assert_eq!(
        drop.get("dropped_lines").and_then(|v| v.as_int()),
        Some(ring.dropped_lines() as i64)
    );
    assert_eq!(drop.get("kept_units").and_then(|v| v.as_int()), Some(1));
    assert!(drop.get("seq").and_then(|v| v.as_int()).is_some());
    assert!(drop.get("t_us").and_then(|v| v.as_int()).is_some());
}

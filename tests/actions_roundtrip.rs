//! Experiment E1 (Table 1): every primitive action composed with its
//! inverse is the identity, on arbitrary programs and arbitrary action
//! sequences — property-tested.

use pivot_lang::equiv::programs_equal;
use pivot_lang::printer::to_source;
use pivot_lang::{ExprKind, Loc, Parent, Program};
use pivot_undo::{ActionKind, ActionLog};
use pivot_workload::{gen_program, WorkloadCfg};
use proptest::prelude::*;

/// Apply a pseudo-random applicable action; returns false if none applies.
fn random_action(prog: &mut Program, log: &mut ActionLog, pick: u64) -> bool {
    let stmts: Vec<_> = prog.attached_stmts();
    if stmts.is_empty() {
        return false;
    }
    let s = stmts[(pick % stmts.len() as u64) as usize];
    match pick % 5 {
        0 => log.delete(prog, s).is_ok(),
        1 => {
            // Move to the front of its own block.
            let parent = prog.stmt(s).parent.unwrap();
            log.move_stmt(
                prog,
                s,
                Loc {
                    parent,
                    anchor: pivot_lang::AnchorPos::Start,
                },
            )
            .is_ok()
        }
        2 => {
            let loc = prog.loc_of(s).unwrap();
            log.copy(prog, s, loc).is_ok()
        }
        3 => {
            // Modify the first expression root to a constant.
            match prog.stmt_expr_roots(s).first().copied() {
                Some(e) => log
                    .modify_expr(prog, e, ExprKind::Const(pick as i64 % 100))
                    .is_ok(),
                None => false,
            }
        }
        _ => {
            // Logged Delete followed by logged Add at root start (exercises
            // Add; the pair inverts as Delete-inverse ∘ Add-inverse).
            if prog.stmt(s).parent == Some(Parent::Root) && log.delete(prog, s).is_ok() {
                return log.add(prog, s, Loc::root_start()).is_ok();
            }
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_action_sequences_invert_exactly(
        seed in 0u64..500,
        picks in proptest::collection::vec(0u64..1000, 1..12),
    ) {
        let cfg = WorkloadCfg { fragments: 4, noise_ratio: 0.3, ..Default::default() };
        let mut prog = gen_program(seed, &cfg);
        let original = prog.clone();
        let mut log = ActionLog::new();
        for p in picks {
            random_action(&mut prog, &mut log, p);
            prop_assert!(prog.check_invariants().is_empty());
        }
        // Invert everything in reverse order.
        let actions: Vec<ActionKind> =
            log.actions.iter().rev().map(|a| a.kind.clone()).collect();
        for kind in actions {
            ActionLog::apply_inverse(&mut prog, &kind)
                .expect("reverse-order inverses always apply");
        }
        prop_assert!(
            programs_equal(&prog, &original),
            "round-trip mismatch:\n--- original ---\n{}\n--- got ---\n{}",
            to_source(&original),
            to_source(&prog)
        );
        prop_assert!(prog.check_invariants().is_empty());
    }
}

#[test]
fn each_action_kind_roundtrips_individually() {
    let src = "a = 1\nb = a + 2\ndo i = 1, 3\n  c = i\nenddo\nwrite b\n";
    // Delete.
    {
        let mut p = pivot_lang::parser::parse(src).unwrap();
        let mut log = ActionLog::new();
        let t = p.body[0];
        log.delete(&mut p, t).unwrap();
        let k = log.actions.pop().unwrap().kind;
        ActionLog::apply_inverse(&mut p, &k).unwrap();
        assert_eq!(to_source(&p), src);
    }
    // Move.
    {
        let mut p = pivot_lang::parser::parse(src).unwrap();
        let mut log = ActionLog::new();
        let t = p.body[2];
        log.move_stmt(&mut p, t, Loc::root_start()).unwrap();
        let k = log.actions.pop().unwrap().kind;
        ActionLog::apply_inverse(&mut p, &k).unwrap();
        assert_eq!(to_source(&p), src);
    }
    // Copy.
    {
        let mut p = pivot_lang::parser::parse(src).unwrap();
        let mut log = ActionLog::new();
        let t = p.body[1];
        let loc = p.loc_of(t).unwrap();
        log.copy(&mut p, t, loc).unwrap();
        let k = log.actions.pop().unwrap().kind;
        ActionLog::apply_inverse(&mut p, &k).unwrap();
        assert_eq!(to_source(&p), src);
    }
    // ModifyExpr.
    {
        let mut p = pivot_lang::parser::parse(src).unwrap();
        let mut log = ActionLog::new();
        let t = p.body[1];
        let e = p.stmt_expr_roots(t)[0];
        log.modify_expr(&mut p, e, ExprKind::Const(9)).unwrap();
        let k = log.actions.pop().unwrap().kind;
        ActionLog::apply_inverse(&mut p, &k).unwrap();
        assert_eq!(to_source(&p), src);
    }
    // ModifyHeader.
    {
        let mut p = pivot_lang::parser::parse(src).unwrap();
        let mut log = ActionLog::new();
        let lp = p.body[2];
        let old = pivot_undo::actions::read_header(&p, lp).unwrap();
        let new_hi = p.alloc_expr(ExprKind::Const(7), lp);
        let new = pivot_undo::actions::LoopHeader { hi: new_hi, ..old };
        log.modify_header(&mut p, lp, new).unwrap();
        assert!(to_source(&p).contains("do i = 1, 7"));
        let k = log.actions.pop().unwrap().kind;
        ActionLog::apply_inverse(&mut p, &k).unwrap();
        assert_eq!(to_source(&p), src);
    }
    // Add (after a detach).
    {
        let mut p = pivot_lang::parser::parse(src).unwrap();
        let mut log = ActionLog::new();
        let t = p.body[0];
        p.detach(t).unwrap();
        log.add(&mut p, t, Loc::root_start()).unwrap();
        assert_eq!(to_source(&p), src);
        let k = log.actions.pop().unwrap().kind;
        ActionLog::apply_inverse(&mut p, &k).unwrap();
        assert!(!p.stmt(t).is_attached());
    }
}

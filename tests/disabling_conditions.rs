//! Experiment E3 (Table 3): detection of disabling conditions of **safety**
//! and **reversibility**, per condition class.
//!
//! The paper prints the DCE row of Table 3 and defers the rest to [6]; this
//! suite covers, for each transformation in the catalog, at least one
//! safety-disabling condition (a change makes the applied transformation
//! unsafe) and one reversibility-disabling condition (a later action makes
//! it non-immediately-reversible, with correct blame).

use pivot_ir::Rep;
use pivot_lang::parser::parse;
use pivot_lang::{Loc, Parent, Program, StmtKind};
use pivot_undo::actions::ActionLog;
use pivot_undo::history::History;
use pivot_undo::revers::check_reversible;
use pivot_undo::safety::still_safe;
use pivot_undo::{catalog, XformId, XformKind};

struct Rig {
    prog: Program,
    rep: Rep,
    log: ActionLog,
    hist: History,
}

impl Rig {
    fn new(src: &str) -> Rig {
        let prog = parse(src).unwrap();
        let rep = Rep::build(&prog);
        Rig {
            prog,
            rep,
            log: ActionLog::new(),
            hist: History::new(),
        }
    }

    fn apply(&mut self, kind: XformKind) -> XformId {
        let opps = catalog::find(&self.prog, &self.rep, kind);
        assert!(!opps.is_empty(), "no {kind} opportunity");
        let a = catalog::apply(&mut self.prog, &mut self.log, &opps[0]).unwrap();
        self.rep.refresh(&self.prog);
        self.hist.record(kind, a.params, a.pre, a.post, a.stamps)
    }

    fn safe(&self, id: XformId) -> bool {
        still_safe(&self.prog, &self.rep, &self.log, self.hist.get(id).unwrap())
    }

    fn reversible(&self, id: XformId) -> bool {
        check_reversible(
            &self.prog,
            &self.log,
            &self.hist,
            self.hist.get(id).unwrap(),
        )
        .is_ok()
    }

    /// Simulate a program edit: insert parsed statements after `anchor_idx`
    /// in the root body (or at start).
    fn edit_insert(&mut self, src: &str, at_start: bool) {
        let stmts = pivot_lang::parser::parse_stmts_into(&mut self.prog, src).unwrap();
        let mut loc = if at_start {
            Loc::root_start()
        } else {
            Loc::after(Parent::Root, *self.prog.body.first().unwrap())
        };
        for s in stmts {
            self.prog.attach(s, loc).unwrap();
            loc = Loc::after(loc.parent, s);
        }
        self.rep.refresh(&self.prog);
    }
}

// ---------------------------------------------------------------------
// DCE (the paper's printed Table 3 row)
// ---------------------------------------------------------------------

#[test]
fn dce_safety_disabled_by_adding_a_use() {
    // "Add a statement S_l that uses value computed by S_i."
    let mut r = Rig::new("x = 1\ny = 2\nwrite y\n");
    let dce = r.apply(XformKind::Dce); // deletes x = 1
    assert!(r.safe(dce));
    r.edit_insert("write x\n", false);
    assert!(!r.safe(dce), "a new use of x disables the DCE's safety");
}

#[test]
fn dce_safety_disabled_by_modifying_a_statement_into_a_use() {
    // "Modify a statement S_l that uses value computed by S_i."
    let mut r = Rig::new("x = 1\ny = 2\nwrite y\n");
    let dce = r.apply(XformKind::Dce);
    // Edit: make the surviving assignment read x.
    let y_stmt = r.prog.body[0];
    let e = pivot_lang::parser::parse_expr_into(&mut r.prog, "x + 1", y_stmt).unwrap();
    let new_kind = r.prog.expr(e).kind.clone();
    if let StmtKind::Assign { value, .. } = r.prog.stmt(y_stmt).kind {
        r.prog.replace_expr_kind(value, new_kind);
    }
    r.rep.refresh(&r.prog);
    assert!(!r.safe(dce));
}

#[test]
fn dce_reversibility_disabled_by_deleting_location_context() {
    // "Delete context of the location (e.g., delete the loop it belongs to)."
    let mut r = Rig::new("do i = 1, 3\n  x = 1\n  write i\nenddo\n");
    let dce = r.apply(XformKind::Dce); // deletes x = 1 inside the loop
    assert!(r.reversible(dce));
    // Edit: delete the loop.
    let lp = r.prog.body[0];
    r.prog.detach(lp).unwrap();
    r.rep.refresh(&r.prog);
    let err = check_reversible(&r.prog, &r.log, &r.hist, r.hist.get(dce).unwrap()).unwrap_err();
    // An edit (not a transformation) destroyed the context: no blame.
    assert_eq!(err.affecting, None);
}

#[test]
fn dce_reversibility_disabled_by_copying_context() {
    // "Copy context of the location (e.g., copy the loop it belongs to by
    // LUR)" — realized here as: DCE inside a loop, then the loop is
    // restructured so the anchored location no longer resolves.
    let mut r = Rig::new("do i = 1, 3\n  y = i\n  x = 1\n  write y\nenddo\n");
    let dce = r.apply(XformKind::Dce); // deletes x = 1 (anchor: after y = i)
    assert!(r.reversible(dce));
    // Edit: delete the anchor statement y = i.
    let lp = r.prog.body[0];
    let body = match &r.prog.stmt(lp).kind {
        StmtKind::DoLoop { body, .. } => body.clone(),
        _ => unreachable!(),
    };
    r.prog.detach(body[0]).unwrap();
    r.rep.refresh(&r.prog);
    assert!(
        !r.reversible(dce),
        "anchor removal invalidates the original location"
    );
}

// ---------------------------------------------------------------------
// Rewrites (CSE / CTP / CPP)
// ---------------------------------------------------------------------

#[test]
fn cse_safety_disabled_by_operand_definition() {
    let mut r = Rig::new("d = e + f\nr = e + f\nwrite r\nwrite d\n");
    let cse = r.apply(XformKind::Cse);
    assert!(r.safe(cse));
    r.edit_insert("e = 0\n", false); // between def and use
    assert!(!r.safe(cse));
}

#[test]
fn cse_safety_disabled_by_result_definition() {
    let mut r = Rig::new("d = e + f\nr = e + f\nwrite r\nwrite d\n");
    let cse = r.apply(XformKind::Cse);
    r.edit_insert("d = 0\n", false);
    assert!(!r.safe(cse));
}

#[test]
fn ctp_safety_disabled_by_constant_change() {
    let mut r = Rig::new("c = 1\nx = c + 2\nwrite x\n");
    let ctp = r.apply(XformKind::Ctp);
    assert!(r.safe(ctp));
    let def = r.prog.body[0];
    if let StmtKind::Assign { value, .. } = r.prog.stmt(def).kind {
        r.prog
            .replace_expr_kind(value, pivot_lang::ExprKind::Const(2));
    }
    r.rep.refresh(&r.prog);
    assert!(
        !r.safe(ctp),
        "the propagated constant no longer matches its source"
    );
}

#[test]
fn cpp_safety_disabled_by_source_redefinition() {
    let mut r = Rig::new("read y\nx = y\nwrite x + 1\n");
    let cpp = r.apply(XformKind::Cpp);
    assert!(r.safe(cpp));
    // Insert y = 0 between the copy and the use.
    let copy_stmt = r.prog.body[1];
    let stmts = pivot_lang::parser::parse_stmts_into(&mut r.prog, "y = 0\n").unwrap();
    r.prog
        .attach(stmts[0], Loc::after(Parent::Root, copy_stmt))
        .unwrap();
    r.rep.refresh(&r.prog);
    assert!(!r.safe(cpp));
}

#[test]
fn rewrite_reversibility_disabled_by_later_modify() {
    // Reversibility: a later transformation modifying the same node blocks
    // the inverse Modify, and the blame identifies it.
    let mut r = Rig::new("c = 1\nx = c + 2\nwrite x\n");
    let ctp = r.apply(XformKind::Ctp);
    let cfo = r.apply(XformKind::Cfo); // folds 1 + 2, consuming CTP's node
    let err = check_reversible(&r.prog, &r.log, &r.hist, r.hist.get(ctp).unwrap()).unwrap_err();
    assert_eq!(err.affecting, Some(cfo));
    assert!(r.reversible(cfo));
}

// ---------------------------------------------------------------------
// Loop transformations (ICM / INX / FUS / LUR / SMI)
// ---------------------------------------------------------------------

#[test]
fn icm_safety_disabled_by_target_definition_in_loop() {
    let mut r = Rig::new("do i = 1, 8\n  x = a + b\n  A(i) = x\nenddo\n");
    let icm = r.apply(XformKind::Icm);
    assert!(r.safe(icm));
    // Edit: define x inside the loop.
    let lp = r.prog.body[1];
    let stmts = pivot_lang::parser::parse_stmts_into(&mut r.prog, "x = 0\n").unwrap();
    r.prog
        .attach(
            stmts[0],
            Loc {
                parent: Parent::Block(lp, pivot_lang::BlockRole::LoopBody),
                anchor: pivot_lang::AnchorPos::Start,
            },
        )
        .unwrap();
    r.rep.refresh(&r.prog);
    assert!(!r.safe(icm));
}

#[test]
fn icm_safety_disabled_by_bound_change_to_zero_trip() {
    let mut r = Rig::new("do i = 1, 8\n  x = a + b\n  A(i) = x\nenddo\n");
    let icm = r.apply(XformKind::Icm);
    let lp = r.prog.body[1];
    if let StmtKind::DoLoop { hi, .. } = r.prog.stmt(lp).kind {
        r.prog.replace_expr_kind(hi, pivot_lang::ExprKind::Const(0));
    }
    r.rep.refresh(&r.prog);
    assert!(!r.safe(icm), "a zero-trip loop must not have hoisted code");
}

#[test]
fn inx_safety_disabled_by_new_blocking_dependence() {
    let mut r = Rig::new("do i = 1, 10\n  do j = 1, 10\n    A(i, j) = B(i, j)\n  enddo\nenddo\n");
    let inx = r.apply(XformKind::Inx);
    assert!(r.safe(inx));
    // Edit: add a (<,>)-carried dependence statement into the inner body.
    let outer = r.prog.body[0];
    let inner = match &r.prog.stmt(outer).kind {
        StmtKind::DoLoop { body, .. } => body[0],
        _ => unreachable!(),
    };
    let stmts =
        pivot_lang::parser::parse_stmts_into(&mut r.prog, "C(i, j) = C(i - 1, j + 1)\n").unwrap();
    r.prog
        .attach(
            stmts[0],
            Loc {
                parent: Parent::Block(inner, pivot_lang::BlockRole::LoopBody),
                anchor: pivot_lang::AnchorPos::Start,
            },
        )
        .unwrap();
    r.rep.refresh(&r.prog);
    // NOTE: after the interchange, outer iterates j and inner iterates i;
    // the inserted dependence has direction (<,>) on the *current* nest.
    assert!(!r.safe(inx));
}

#[test]
fn inx_reversibility_disabled_by_statement_between_loops() {
    // The Section 5.2 condition, driven by an edit rather than ICM.
    let mut r = Rig::new("do i = 1, 10\n  do j = 1, 10\n    A(i, j) = 0\n  enddo\nenddo\n");
    let inx = r.apply(XformKind::Inx);
    assert!(r.reversible(inx));
    let outer = r.prog.body[0];
    let stmts = pivot_lang::parser::parse_stmts_into(&mut r.prog, "x = 1\n").unwrap();
    r.prog
        .attach(
            stmts[0],
            Loc {
                parent: Parent::Block(outer, pivot_lang::BlockRole::LoopBody),
                anchor: pivot_lang::AnchorPos::Start,
            },
        )
        .unwrap();
    r.rep.refresh(&r.prog);
    let err = check_reversible(&r.prog, &r.log, &r.hist, r.hist.get(inx).unwrap()).unwrap_err();
    assert_eq!(
        err.affecting, None,
        "an edit, not a transformation, is to blame"
    );
}

#[test]
fn fus_safety_disabled_by_new_backward_dependence() {
    let mut r =
        Rig::new("do i = 1, 10\n  A(i) = 1\nenddo\ndo i = 1, 10\n  B(i) = 2\nenddo\nwrite B(3)\n");
    let fus = r.apply(XformKind::Fus);
    assert!(r.safe(fus));
    // Edit the second body statement to read A(i + 1): a backward
    // dependence in fused form.
    let lp = r.prog.body[0];
    let body = match &r.prog.stmt(lp).kind {
        StmtKind::DoLoop { body, .. } => body.clone(),
        _ => unreachable!(),
    };
    let b_stmt = body[1];
    let e = pivot_lang::parser::parse_expr_into(&mut r.prog, "A(i + 1)", b_stmt).unwrap();
    let kind = r.prog.expr(e).kind.clone();
    if let StmtKind::Assign { value, .. } = r.prog.stmt(b_stmt).kind {
        r.prog.replace_expr_kind(value, kind);
    }
    r.rep.refresh(&r.prog);
    assert!(!r.safe(fus));
}

#[test]
fn lur_safety_disabled_by_bound_change() {
    let mut r = Rig::new("do i = 1, 8\n  A(i) = i\nenddo\nwrite A(2)\n");
    let lur = r.apply(XformKind::Lur);
    assert!(r.safe(lur));
    let lp = r.prog.body[0];
    if let StmtKind::DoLoop { hi, .. } = r.prog.stmt(lp).kind {
        r.prog.replace_expr_kind(hi, pivot_lang::ExprKind::Const(7));
    }
    r.rep.refresh(&r.prog);
    assert!(!r.safe(lur), "trip 7 is not divisible by the unroll factor");
}

#[test]
fn smi_safety_disabled_by_dismantled_nest() {
    let mut r = Rig::new("do i = 1, 8\n  A(i) = i\nenddo\nwrite A(2)\n");
    let smi = r.apply(XformKind::Smi);
    assert!(r.safe(smi));
    // Edit: insert a statement into the outer strip loop (no longer a pure
    // strip nest).
    let outer = r.prog.body[0];
    let stmts = pivot_lang::parser::parse_stmts_into(&mut r.prog, "x = 1\n").unwrap();
    r.prog
        .attach(
            stmts[0],
            Loc {
                parent: Parent::Block(outer, pivot_lang::BlockRole::LoopBody),
                anchor: pivot_lang::AnchorPos::Start,
            },
        )
        .unwrap();
    r.rep.refresh(&r.prog);
    assert!(!r.safe(smi));
}

#[test]
fn performing_never_destroys_earlier_safety() {
    // Paper: "performing a transformation can never destroy the safety of
    // already applied transformations."
    let mut r = Rig::new(
        "D = E + F\nC = 1\ndo i = 1, 100\n  do j = 1, 50\n    A(j) = B(j) + C\n    R(i, j) = E + F\n  enddo\nenddo\n",
    );
    let mut ids = Vec::new();
    for k in [
        XformKind::Cse,
        XformKind::Ctp,
        XformKind::Inx,
        XformKind::Icm,
    ] {
        ids.push(r.apply(k));
        for &earlier in &ids {
            assert!(r.safe(earlier), "{earlier} lost safety after applying {k}");
        }
    }
}

//! Experiment E5/E7: exact reproduction of the paper's worked example
//! (Figure 1, Figure 2, Section 5.2) and full independent-order semantics
//! over all 24 undo permutations.

use pivot_lang::equiv::programs_equal;
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{XformId, XformKind};

const FIG1: &str = "\
D = E + F
C = 1
do i = 1, 100
  do j = 1, 50
    A(j) = B(j) + C
    R(i, j) = E + F
  enddo
enddo
";

fn figure1_session() -> (Session, [XformId; 4]) {
    let mut s = Session::from_source(FIG1).unwrap();
    let cse = s.apply_kind(XformKind::Cse).expect("cse(1)");
    let ctp = s.apply_kind(XformKind::Ctp).expect("ctp(2)");
    let inx = s.apply_kind(XformKind::Inx).expect("inx(3)");
    let icm = s.apply_kind(XformKind::Icm).expect("icm(4)");
    (s, [cse, ctp, inx, icm])
}

#[test]
fn transformed_source_matches_figure1_lower_half() {
    let (s, _) = figure1_session();
    assert_eq!(
        s.source(),
        "\
D = E + F
C = 1
do j = 1, 50
  A(j) = B(j) + 1
  do i = 1, 100
    R(i, j) = D
  enddo
enddo
"
    );
}

#[test]
fn annotations_mention_all_four_transformations() {
    let (s, _) = figure1_session();
    let rendered = s.log.render_annotations(&s.prog, &s.history.stamp_order());
    // Figure 2: md for modifies (cse, ctp, inx headers) and mv for the icm.
    assert!(rendered.contains("md1"), "cse annotation: {rendered}");
    assert!(rendered.contains("md2"), "ctp annotation: {rendered}");
    assert!(rendered.contains("md3"), "inx annotation: {rendered}");
    assert!(rendered.contains("mv4"), "icm annotation: {rendered}");
}

#[test]
fn section_5_2_cse_and_ctp_reverse_immediately() {
    // "the post_patterns of CSE and CTP exist … CSE and CTP can be reversed
    // immediately"; "the reversal of ICM can be immediately applied … since
    // it is the last transformation applied".
    let (s, [cse, ctp, _inx, icm]) = figure1_session();
    for id in [cse, ctp, icm] {
        let record = s.history.get(id).unwrap().clone();
        assert!(
            pivot_undo::revers::check_reversible(&s.prog, &s.log, &s.history, &record).is_ok(),
            "{id} should be immediately reversible"
        );
    }
}

#[test]
fn section_5_2_inx_requires_icm_first() {
    let (s, [_, _, inx, icm]) = figure1_session();
    let record = s.history.get(inx).unwrap().clone();
    let err = pivot_undo::revers::check_reversible(&s.prog, &s.log, &s.history, &record)
        .expect_err("INX post pattern (Tight Loops) is invalidated by mv4");
    assert_eq!(err.affecting, Some(icm));
}

#[test]
fn undo_inx_cascades_exactly_icm() {
    let (mut s, [cse, ctp, inx, icm]) = figure1_session();
    let report = s.undo(inx, Strategy::Regional).unwrap();
    assert_eq!(report.undone, vec![icm, inx]);
    assert_eq!(
        s.history.get(cse).unwrap().state,
        pivot_undo::XformState::Active
    );
    assert_eq!(
        s.history.get(ctp).unwrap().state,
        pivot_undo::XformState::Active
    );
    // The surviving rewrites are still in the code.
    assert!(s.source().contains("R(i, j) = D"));
    assert!(s.source().contains("A(j) = B(j) + 1"));
    assert!(s.source().contains("do i = 1, 100"));
}

#[test]
fn all_24_undo_orders_restore_the_source() {
    // Exhaustive permutations of {cse, ctp, inx, icm}.
    let perms = permutations(&[0, 1, 2, 3]);
    assert_eq!(perms.len(), 24);
    for perm in perms {
        let (mut s, ids) = figure1_session();
        for &i in &perm {
            match s.undo(ids[i], Strategy::Regional) {
                Ok(_) | Err(pivot_undo::UndoError::AlreadyUndone(_)) => {}
                Err(e) => panic!("order {perm:?}: {e}"),
            }
        }
        assert_eq!(
            s.source(),
            FIG1,
            "order {perm:?} failed to restore the source"
        );
        assert!(programs_equal(&s.prog, &s.original));
        assert!(
            s.log.actions.is_empty(),
            "order {perm:?} left annotations behind"
        );
        s.assert_consistent();
    }
}

#[test]
fn every_intermediate_state_is_semantics_preserving() {
    // After each undo step (any order), the program output equals the
    // original program's output.
    let input: Vec<i64> = vec![];
    let expected =
        pivot_lang::interp::run_default(&pivot_lang::parser::parse(FIG1).unwrap(), &input).unwrap();
    for perm in permutations(&[0, 1, 2, 3]) {
        let (mut s, ids) = figure1_session();
        for &i in &perm {
            match s.undo(ids[i], Strategy::Regional) {
                Ok(_) | Err(pivot_undo::UndoError::AlreadyUndone(_)) => {}
                Err(e) => panic!("order {perm:?}: {e}"),
            }
            let now = pivot_lang::interp::run_default(&s.prog, &input).unwrap();
            assert_eq!(now, expected, "order {perm:?} broke semantics mid-way");
        }
    }
}

#[test]
fn history_summary_matches_paper_notation() {
    let (s, _) = figure1_session();
    assert_eq!(s.history.summary(), "cse(1) ctp(2) inx(3) icm(4)");
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

//! Transactional-undo property tests: for every reachable fault point in a
//! randomly generated transformation script, a fault-induced rollback must
//! restore the exact pre-request state — byte-identical source, identical
//! interpreter outputs on seeded inputs, and a consistent
//! history/log/program triple.

use pivot_lang::interp;
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{EngineError, FaultPlan, UndoError, XformKind, ALL_KINDS};
use pivot_workload::{gen_inputs, prepare, WorkloadCfg};
use proptest::prelude::*;

fn cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.4,
        figure1_chains: 1,
        ..Default::default()
    }
}

/// Reference state captured before a faulted request.
struct Reference {
    source: String,
    inputs: Vec<Vec<i64>>,
    outputs: Vec<Vec<i64>>,
}

impl Reference {
    fn capture(session: &Session, seed: u64) -> Reference {
        let inputs: Vec<Vec<i64>> = (0..3u64).map(|i| gen_inputs(seed ^ (i + 1), 64)).collect();
        let outputs = inputs
            .iter()
            .map(|inp| interp::run_default(&session.prog, inp).unwrap())
            .collect();
        Reference {
            source: session.source(),
            inputs,
            outputs,
        }
    }

    fn assert_restored(&self, session: &Session) -> Result<(), TestCaseError> {
        prop_assert_eq!(session.source(), self.source.clone(), "source not restored");
        for (inp, want) in self.inputs.iter().zip(&self.outputs) {
            let got = interp::run_default(&session.prog, inp)
                .map_err(|e| TestCaseError::fail(format!("post-rollback exec: {e}")))?;
            prop_assert_eq!(&got, want, "interpreter output changed by rollback");
        }
        let violations = session.consistency_violations();
        prop_assert!(
            violations.is_empty(),
            "inconsistent after rollback: {violations:?}"
        );
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sweep N upward per fault family until the cascade completes without
    /// tripping; every trip must roll back to the reference state.
    #[test]
    fn every_fault_point_rolls_back_cleanly(seed in 0u64..200, pick in 0usize..64) {
        let prepared = prepare(seed, &cfg(), 6);
        prop_assume!(prepared.applied.len() >= 3);
        let target = prepared.applied[pick % prepared.applied.len()];
        let base = prepared.session;
        let reference = Reference::capture(&base, seed);
        let mut tripped = 0usize;
        for family in 0..3usize {
            for n in 1..=64u64 {
                let plan = match family {
                    0 => FaultPlan::nth_inverse_action(n),
                    1 => FaultPlan::nth_safety_check(n),
                    _ => FaultPlan::nth_rebuild(n),
                };
                let mut s = base.clone();
                s.arm_faults(plan);
                match s.undo(target, Strategy::Regional) {
                    Err(UndoError::RolledBack { .. }) => {
                        tripped += 1;
                        reference.assert_restored(&s)?;
                    }
                    Ok(_) => break,
                    Err(e) => return Err(TestCaseError::fail(format!("family {family} n={n}: {e}"))),
                }
            }
        }
        // Every cascade performs at least one inverse action and one rebuild.
        prop_assert!(tripped >= 2, "sweep never tripped a fault");
    }

    /// Poisoning any kind that the cascade actually reverses must roll back
    /// with the injected fault as cause; other kinds leave the undo intact.
    #[test]
    fn poisoned_kinds_roll_back_or_pass_through(seed in 0u64..200, pick in 0usize..64) {
        let prepared = prepare(seed, &cfg(), 6);
        prop_assume!(prepared.applied.len() >= 3);
        let target = prepared.applied[pick % prepared.applied.len()];
        let base = prepared.session;
        let reference = Reference::capture(&base, seed);
        let present: Vec<XformKind> = ALL_KINDS
            .iter()
            .copied()
            .filter(|k| base.history.records.iter().any(|r| r.kind == *k))
            .collect();
        for kind in present {
            let mut s = base.clone();
            s.arm_faults(FaultPlan::poison(kind));
            match s.undo(target, Strategy::Regional) {
                Err(UndoError::RolledBack { cause, .. }) => {
                    prop_assert!(
                        matches!(cause, EngineError::Injected(_)),
                        "poison rollback with unexpected cause: {cause}"
                    );
                    reference.assert_restored(&s)?;
                }
                Ok(_) => {
                    let violations = s.consistency_violations();
                    prop_assert!(violations.is_empty(), "{violations:?}");
                }
                Err(e) => return Err(TestCaseError::fail(format!("poison {kind}: {e}"))),
            }
        }
    }

    /// After a rollback the session is not wedged: disarming the faults and
    /// repeating the identical request succeeds.
    #[test]
    fn session_usable_after_rollback(seed in 0u64..200, pick in 0usize..64) {
        let prepared = prepare(seed, &cfg(), 6);
        prop_assume!(prepared.applied.len() >= 3);
        let target = prepared.applied[pick % prepared.applied.len()];
        let mut s = prepared.session;
        s.arm_faults(FaultPlan::nth_inverse_action(1));
        match s.undo(target, Strategy::Regional) {
            Err(UndoError::RolledBack { .. }) => {}
            other => return Err(TestCaseError::fail(format!("expected rollback, got {other:?}"))),
        }
        s.disarm_faults();
        let r = s.undo(target, Strategy::Regional)
            .map_err(|e| TestCaseError::fail(format!("retry after rollback: {e}")))?;
        prop_assert!(r.undone.contains(&target));
        s.assert_consistent();
    }
}

/// `undo_reverse_to` shares the transactional wrapper: a fault mid-way
/// through the reverse sweep restores the full pre-request state, not a
/// partially rewound one.
#[test]
fn reverse_to_rolls_back_atomically() {
    for seed in 0..6u64 {
        let prepared = prepare(seed, &cfg(), 6);
        if prepared.applied.len() < 3 {
            continue;
        }
        let target = prepared.applied[0];
        let base = prepared.session;
        let pre = base.source();
        for n in 1..=64u64 {
            let mut s = base.clone();
            s.arm_faults(FaultPlan::nth_inverse_action(n));
            match s.undo_reverse_to(target) {
                Err(UndoError::RolledBack { .. }) => {
                    assert_eq!(s.source(), pre, "seed {seed} n={n}");
                    assert!(s.consistency_violations().is_empty());
                }
                Ok(_) => break,
                Err(e) => panic!("seed {seed} n={n}: {e}"),
            }
        }
    }
}

//! Edge cases for structural program equality (`pivot_lang::equiv`).
//!
//! The auditor's semantic family (`PV202`/`PV203` fast paths) and the
//! engine's undo round-trip assertions both lean on `programs_equal`, so
//! its corner behavior is load-bearing: empty programs, single-statement
//! loops, aliasing array references, tombstone insensitivity, and the
//! explicit-vs-implicit loop step must all compare the way the paper's
//! notion of "restored" demands.

use pivot_lang::equiv::{exprs_equal_in, programs_equal, stmts_equal};
use pivot_lang::parser::{parse, parse_stmts_into};
use pivot_lang::StmtKind;

fn p(src: &str) -> pivot_lang::Program {
    parse(src).expect("test source parses")
}

#[test]
fn empty_programs_are_equal() {
    let a = p("");
    let b = p("");
    assert!(programs_equal(&a, &b));
    // Empty vs non-empty must not compare equal.
    let c = p("x = 1\n");
    assert!(!programs_equal(&a, &c));
    assert!(!programs_equal(&c, &a));
}

#[test]
fn single_statement_loops_compare_by_structure() {
    let a = p("do i = 1, 10\n  A(i) = i\nenddo\n");
    let b = p("do i = 1, 10\n  A(i) = i\nenddo\n");
    assert!(programs_equal(&a, &b));
    // Same body, different induction variable name: not equal.
    let c = p("do j = 1, 10\n  A(j) = j\nenddo\n");
    assert!(!programs_equal(&a, &c));
    // Same header, body differs in one subscript: not equal.
    let d = p("do i = 1, 10\n  A(1) = i\nenddo\n");
    assert!(!programs_equal(&a, &d));
    // Nested single-statement loop towers compare depth-sensitively.
    let e = p("do i = 1, 10\n  do j = 1, 5\n    A(i) = j\n  enddo\nenddo\n");
    let f = p("do i = 1, 10\n  do j = 1, 5\n    A(i) = j\n  enddo\nenddo\n");
    assert!(programs_equal(&e, &f));
    assert!(!programs_equal(&a, &e));
}

#[test]
fn implicit_and_explicit_unit_steps_are_distinct() {
    // `do i = 1, 10` parses with no step; `do i = 1, 10, 1` records an
    // explicit one. They execute identically but are *structurally*
    // different programs — undo restores the exact surface form, so
    // equality must distinguish them.
    let implicit = p("do i = 1, 10\n  write i\nenddo\n");
    let explicit = p("do i = 1, 10, 1\n  write i\nenddo\n");
    assert!(!programs_equal(&implicit, &explicit));
    assert!(programs_equal(
        &implicit,
        &p("do i = 1, 10\n  write i\nenddo\n")
    ));
}

#[test]
fn aliasing_array_references_compare_by_name_and_subscripts() {
    let a = p("A(i) = B(i)\n");
    // Same array, different subscript variable: not equal.
    assert!(!programs_equal(&a, &p("A(j) = B(i)\n")));
    // Different array, same subscripts: not equal.
    assert!(!programs_equal(&a, &p("C(i) = B(i)\n")));
    // Extra subscript dimension: not equal.
    assert!(!programs_equal(&a, &p("A(i, 1) = B(i)\n")));
    // Same reference spelled in a separately-parsed program: equal (symbol
    // identity resolves by name, not by arena id).
    assert!(programs_equal(&a, &p("A(i) = B(i)\n")));
    // Within one program: A(i) and A(i) in different statements are the
    // same expression structurally, A(i) vs A(k) are not.
    let two = p("A(i) = 1\nA(i) = 2\nA(k) = 3\n");
    let stmts = two.attached_stmts();
    let sub = |s: pivot_lang::StmtId| match &two.stmt(s).kind {
        StmtKind::Assign { target, .. } => target.subs[0],
        _ => unreachable!("assign statements only"),
    };
    assert!(exprs_equal_in(&two, sub(stmts[0]), sub(stmts[1])));
    assert!(!exprs_equal_in(&two, sub(stmts[0]), sub(stmts[2])));
}

#[test]
fn equality_ignores_tombstones_and_arena_layout() {
    // Grow a program, detach the extra statement, and compare against a
    // clean parse: the dead arena entry must be invisible to equality.
    let mut grown = p("x = 1\nwrite x\n");
    let added = parse_stmts_into(&mut grown, "y = 2\n").expect("fragment parses");
    let loc = pivot_lang::Loc {
        parent: pivot_lang::Parent::Root,
        anchor: pivot_lang::AnchorPos::Start,
    };
    grown.attach(added[0], loc).expect("attaches");
    grown.detach(added[0]).expect("detaches");
    let clean = p("x = 1\nwrite x\n");
    assert!(programs_equal(&grown, &clean));
    assert!(programs_equal(&clean, &grown));
}

#[test]
fn if_statements_compare_branch_by_branch() {
    let a = p("if (x) then\n  write 1\nelse\n  write 2\nendif\n");
    assert!(programs_equal(
        &a,
        &p("if (x) then\n  write 1\nelse\n  write 2\nendif\n")
    ));
    // Swapped branches: not equal.
    assert!(!programs_equal(
        &a,
        &p("if (x) then\n  write 2\nelse\n  write 1\nendif\n")
    ));
    // Missing else: not equal.
    assert!(!programs_equal(&a, &p("if (x) then\n  write 1\nendif\n")));
    // Kind mismatch at statement level (if vs write): stmts_equal is false
    // rather than a panic.
    let b = p("write 1\n");
    let sa = a.attached_stmts()[0];
    let sb = b.attached_stmts()[0];
    assert!(!stmts_equal(&a, sa, &b, sb));
}

#[test]
fn read_write_statements_compare_by_target() {
    let a = p("read x\nwrite x + 1\n");
    assert!(programs_equal(&a, &p("read x\nwrite x + 1\n")));
    assert!(!programs_equal(&a, &p("read y\nwrite x + 1\n")));
    assert!(!programs_equal(&a, &p("read x\nwrite x + 2\n")));
    // Array read target with subscript.
    let b = p("read A(i)\n");
    assert!(programs_equal(&b, &p("read A(i)\n")));
    assert!(!programs_equal(&b, &p("read A(j)\n")));
}

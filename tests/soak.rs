//! Soak test: long interleaved sequences of applies, independent-order
//! undos and edits, with invariants checked at every step. This is the
//! closest thing to the paper's intended interactive use — a user freely
//! mixing transformation, undo and editing — and the harshest exercise of
//! the cascade machinery.
//!
//! Invariants maintained throughout:
//! 1. program structural consistency and history/log agreement;
//! 2. semantic equivalence to the evolving ground truth: the source program
//!    plus all edits (edits are replayed onto a parallel "source" copy);
//! 3. `find_unsafe()` empty after every `remove_unsafe` sweep;
//! 4. every undo request either succeeds or reports `AlreadyUndone`.

use pivot_lang::interp;
use pivot_lang::Program;
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{Edit, RepMode, UndoError, XformId};
use pivot_workload::{gen_inputs, gen_program, WorkloadCfg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replay an Insert edit onto the parallel source copy. Returns false when
/// the anchor does not exist there (the edit targeted transformed-only
/// structure), in which case the step is skipped entirely.
/// An edit is faithfully replayable on the parallel source copy only when
/// its anchor refers to a statement both arenas share (an original
/// statement): session-allocated ids (transformation products or earlier
/// edit statements) mean something different in the source arena.
fn anchor_is_original(edit: &Edit, original_len: usize) -> bool {
    let Edit::Insert { at, .. } = edit else {
        return false;
    };
    if !matches!(at.parent, pivot_lang::Parent::Root) {
        return false;
    }
    match at.anchor {
        pivot_lang::AnchorPos::Start => true,
        pivot_lang::AnchorPos::After(s) => s.index() < original_len,
    }
}

fn replay_on_source(source: &mut Program, edit: &Edit) -> bool {
    let Edit::Insert { src, at } = edit else {
        return false;
    };
    let Ok(stmts) = pivot_lang::parser::parse_stmts_into(source, src) else {
        return false;
    };
    let mut loc = *at;
    for s in stmts {
        if source.attach(s, loc).is_err() {
            return false;
        }
        loc = pivot_lang::Loc::after(loc.parent, s);
    }
    true
}

fn soak(seed: u64, steps: usize) {
    soak_in_mode(seed, steps, RepMode::Batch);
}

fn soak_in_mode(seed: u64, steps: usize, mode: RepMode) {
    let cfg = WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.3,
        figure1_chains: 1,
        ..Default::default()
    };
    let prog = gen_program(seed, &cfg);
    let mut source = prog.clone(); // evolving ground truth
    let mut session = Session::new(prog);
    session.set_rep_mode(mode);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50AC);
    let inputs = gen_inputs(seed, 128);
    let mut live: Vec<XformId> = Vec::new();
    let mut edits_made = 0usize;
    let original_len = source.stmt_arena_len();
    // One edit per anchored slot: stacking several unlogged insertions at
    // one anchor is order-ambiguous between the transformed view and a
    // source replay (edits carry no order stamps), so the oracle only
    // admits distinct slots.
    let mut used_anchors: std::collections::HashSet<pivot_lang::AnchorPos> =
        std::collections::HashSet::new();

    let expected = |source: &Program| interp::run_default(source, &inputs).unwrap();
    let mut truth = expected(&source);

    for step in 0..steps {
        match rng.gen_range(0..10) {
            // 0..5: apply a random available transformation.
            0..=4 => {
                let opps = session.find_all();
                if opps.is_empty() {
                    continue;
                }
                let opp = opps[rng.gen_range(0..opps.len())].clone();
                if let Ok(id) = session.apply(&opp) {
                    live.push(id);
                }
            }
            // 5..8: undo a random live transformation.
            5..=7 => {
                if live.is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..live.len());
                let id = live[idx];
                match session.undo(id, Strategy::Regional) {
                    Ok(report) => {
                        live.retain(|x| !report.undone.contains(x));
                    }
                    Err(UndoError::AlreadyUndone(_)) => {
                        live.remove(idx);
                    }
                    Err(e) => panic!("seed {seed} step {step}: undo {id} failed: {e}"),
                }
            }
            // 8: an edit, then selective removal of invalidated transformations.
            8 => {
                let edit = pivot_workload::gen_edit(&session, rng.gen());
                // Only take edits we can mirror on the ground-truth copy:
                // Root-anchored on an original statement.
                if !anchor_is_original(&edit, original_len) {
                    continue;
                }
                let Edit::Insert { at, .. } = &edit else {
                    continue;
                };
                if !used_anchors.insert(at.anchor) {
                    continue;
                }
                let mut probe = source.clone();
                if !replay_on_source(&mut probe, &edit) {
                    continue;
                }
                source = probe;
                truth = expected(&source);
                edits_made += 1;
                session.edit(&edit).expect("edit applies");
                let report = session.remove_unsafe(Strategy::Regional);
                live.retain(|x| !report.removed.contains(x) && !report.retired.contains(x));
                assert!(
                    session.find_unsafe().is_empty(),
                    "seed {seed} step {step}: unsafe remain after removal"
                );
            }
            // 9: full verification sweep.
            _ => {
                session.assert_consistent();
            }
        }
        // Semantic ground truth holds after every step.
        let got = interp::run_default(&session.prog, &inputs).unwrap();
        assert_eq!(
            got,
            truth,
            "seed {seed} step {step}: semantics diverged from source+edits\n{}",
            session.source()
        );
    }
    // Final: undo everything still live; program must match the evolving
    // source exactly (structurally) unless retirements made reversal
    // impossible (none expected in this workload).
    for id in live {
        match session.undo(id, Strategy::Regional) {
            Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
            Err(e) => panic!("seed {seed} final undo {id}: {e}"),
        }
    }
    for r in session.history.active().map(|r| r.id).collect::<Vec<_>>() {
        match session.undo(r, Strategy::Regional) {
            Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
            Err(e) => panic!("seed {seed} cleanup undo {r}: {e}"),
        }
    }
    let got = interp::run_default(&session.prog, &inputs).unwrap();
    assert_eq!(got, truth, "seed {seed}: final semantics");
    // Structural fidelity: with at most one edit the final program matches
    // the source+edit exactly. With several edits, unlogged insertions near
    // shared anchors may legitimately land in a different relative order
    // than a source replay (a documented limit of anchor-based locations —
    // edits carry no order stamps); semantics equality is asserted above,
    // and the statement multiset must still agree exactly.
    if edits_made <= 1 {
        assert!(
            pivot_lang::equiv::programs_equal(&session.prog, &source),
            "seed {seed}: final program does not match source+edits\n--- got ---\n{}\n--- want ---\n{}",
            session.source(),
            pivot_lang::printer::to_source(&source)
        );
    } else {
        let lines = |p: &Program| {
            let mut v: Vec<String> = pivot_lang::printer::to_source(p)
                .lines()
                .map(|l| l.trim().to_owned())
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            lines(&session.prog),
            lines(&source),
            "seed {seed}: final statement multiset differs from source+edits"
        );
    }
    session.assert_consistent();
    assert!(session.log.actions.is_empty());
}

#[test]
fn soak_short_many_seeds() {
    for seed in 0..16 {
        soak(seed, 30);
    }
}

#[test]
fn soak_long_few_seeds() {
    for seed in 100..116 {
        soak(seed, 150);
    }
}

/// The incremental-update conformance matrix: the same interleaved
/// apply/undo/edit soak, with every representation refresh cross-checked
/// against a from-scratch rebuild ([`RepMode::Checked`] panics on
/// divergence). Wired into CI as its own step.
#[test]
fn soak_checked_seed_matrix() {
    for seed in 300..310 {
        soak_in_mode(seed, 40, RepMode::Checked);
    }
}

#[test]
#[ignore = "extended soak; run with --ignored for deep shakeout"]
fn soak_extended() {
    for seed in 200..260 {
        soak(seed, 200);
    }
}

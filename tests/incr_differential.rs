//! Differential oracle for the incremental representation update.
//!
//! Every session here runs in [`RepMode::Checked`]: each apply, undo
//! cascade, and edit performs the delta-driven incremental update *and* a
//! from-scratch batch rebuild, panicking on any structural divergence of
//! the eagerly-maintained layers (CFG blocks and edges, dominator and
//! postdominator trees, reaching-definition fact numbering and bitsets,
//! liveness bitsets, def-use/use-def chains, pre-order positions). On top
//! of that, `assert_conforms` rebuilds a batch representation after every
//! operation and compares the lazily-derived high level too — DDG edges and
//! PDG regions/summaries — so a stale lazy layer (e.g. a missed
//! invalidation) cannot hide.
//!
//! Regressions persist in `incr_differential.proptest-regressions`
//! alongside the other suites' files.

use pivot_ir::{incr, Rep};
use pivot_lang::interp;
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{RepMode, UndoError};
use pivot_workload::{gen_edit, gen_inputs, prepare_in_mode, WorkloadCfg};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.3,
        kinds: None,
        figure1_chains: 1,
    }
}

/// Sorted, hash-order-independent projection of a PDG.
fn pdg_fingerprint(pdg: &pivot_ir::pdg::Pdg) -> (String, Vec<String>, Vec<Vec<usize>>) {
    let regions = format!("{:?}", pdg.regions);
    let mut membership: Vec<String> = pdg
        .region_of
        .iter()
        .map(|(s, r)| format!("{s:?}->{r:?}"))
        .chain(
            pdg.regions_of_stmt
                .iter()
                .map(|(k, r)| format!("{k:?}=>{r:?}")),
        )
        .collect();
    membership.sort();
    (regions, membership, pdg.summaries.clone())
}

/// Full conformance check: eager layers via [`incr::divergence`], then the
/// lazily-built high level (DDG, PDG) against a fresh batch build.
fn assert_conforms(s: &Session, context: &str) {
    let batch = Rep::build(&s.prog);
    if let Some(d) = incr::divergence(&batch, &s.rep) {
        panic!("{context}: incremental rep diverged from batch: {d}");
    }
    let ddg_b = format!("{:?}", batch.ddg(&s.prog).deps);
    let ddg_i = format!("{:?}", s.rep.ddg(&s.prog).deps);
    assert_eq!(ddg_b, ddg_i, "{context}: DDG edges diverged");
    assert_eq!(
        pdg_fingerprint(batch.pdg(&s.prog)),
        pdg_fingerprint(s.rep.pdg(&s.prog)),
        "{context}: PDG diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Apply a full workload and undo everything in a random order, all in
    /// Checked mode, verifying conformance (including the lazy layers)
    /// after every step. Semantics must also survive, as in the batch-mode
    /// suites.
    #[test]
    fn checked_apply_undo_roundtrip(seed in 0u64..400, shuffle in 0u64..1000) {
        let mut prepared = prepare_in_mode(seed, &cfg(), 8, RepMode::Checked);
        prop_assume!(prepared.applied.len() >= 2);
        assert_conforms(&prepared.session, "after applies");
        let inputs = gen_inputs(seed, 96);
        let expected = interp::run_default(&prepared.session.original, &inputs).unwrap();
        let mut order = prepared.applied.clone();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(shuffle));
        for id in order {
            match prepared.session.undo(id, Strategy::Regional) {
                Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("undo {id}: {e}"))),
            }
            assert_conforms(&prepared.session, "after undo cascade");
            let now = interp::run_default(&prepared.session.prog, &inputs).unwrap();
            prop_assert_eq!(&now, &expected, "semantics broke mid-undo");
            prepared.session.assert_consistent();
        }
        prop_assert!(prepared.session.log.actions.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Edits (insert/delete/rewrite) drive the incremental path through raw
    /// program changes and the unsafe-transformation removal cascade.
    #[test]
    fn checked_edit_and_removal(seed in 0u64..300, edit_seed in 0u64..1000) {
        let mut prepared = prepare_in_mode(seed, &cfg(), 6, RepMode::Checked);
        prop_assume!(!prepared.applied.is_empty());
        let edit = gen_edit(&prepared.session, edit_seed);
        if prepared.session.edit(&edit).is_ok() {
            assert_conforms(&prepared.session, "after edit");
            prepared.session.remove_unsafe(Strategy::Regional);
            assert_conforms(&prepared.session, "after remove_unsafe");
            prepared.session.assert_consistent();
        }
    }
}

/// Deterministic mixed script (applies, undos, edits) — a fixed-seed
/// complement to the property tests that always runs the same trace.
#[test]
fn checked_mixed_script_fixed_seeds() {
    for seed in 0..6u64 {
        let mut p = prepare_in_mode(seed, &cfg(), 8, RepMode::Checked);
        assert_conforms(&p.session, "after applies");
        // Undo half in application order (exercises affecting chases).
        let half: Vec<_> = p
            .applied
            .iter()
            .copied()
            .take(p.applied.len() / 2)
            .collect();
        for id in half {
            match p.session.undo(id, Strategy::Regional) {
                Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
                Err(e) => panic!("seed {seed}: undo {id}: {e}"),
            }
            assert_conforms(&p.session, "after undo");
        }
        // An edit, then the invalidation sweep.
        let edit = gen_edit(&p.session, seed.wrapping_mul(97).wrapping_add(13));
        if p.session.edit(&edit).is_ok() {
            assert_conforms(&p.session, "after edit");
            p.session.remove_unsafe(Strategy::Regional);
            assert_conforms(&p.session, "after remove_unsafe");
        }
        p.session.assert_consistent();
    }
}

/// The incremental path must actually run: across the seed sweep the
/// sessions take it (counted on the rep itself, not the global registry,
/// so parallel tests cannot interfere).
#[test]
fn checked_mode_exercises_incremental_path() {
    let mut updates = 0u64;
    let mut builds = 0u64;
    for seed in 0..8u64 {
        let p = prepare_in_mode(seed, &cfg(), 8, RepMode::Checked);
        updates += p.session.rep.incr_updates;
        builds += p.session.rep.builds;
    }
    assert!(
        updates > 0,
        "no session ever took the incremental path (builds={builds})"
    );
}

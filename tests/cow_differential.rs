//! Differential suite for the copy-on-write snapshot spine (experiment
//! E18): the same seeded apply/undo/edit script runs through two engines —
//! the production engine, whose checkpoints and clones share structure
//! (chunked persistent arenas, `Arc`'d representation), and an oracle with
//! the old eager-clone semantics, rebuilt from a deep copy before every
//! step so it can share nothing with its own past. Fingerprints, sources,
//! journal bytes, and `UndoReport` counters must stay **byte-identical**
//! at every step. The shared engine additionally holds every checkpoint it
//! ever takes alive for the whole script, so any aliasing bug — a held
//! chunk observing a later mutation — shows up as a divergence.

use pivot_undo::engine::Session;
use pivot_undo::snapshot::{fingerprint, restore_json, snapshot_json};
use pivot_undo::{Journal, Strategy, UndoError, UndoReport};
use pivot_workload::{gen_edit, prepare, WorkloadCfg};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::PathBuf;

fn cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.4,
        figure1_chains: 1,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pivot_cow_differential");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.{}.journal", std::process::id()))
}

/// Deep-copy a session through the snapshot round-trip: the result shares
/// no heap structure with the input (fresh arenas, fresh rep), which is
/// exactly the pre-CoW eager-clone semantics. The journal handle, which a
/// snapshot deliberately does not carry, is re-attached by the caller.
fn deep_copy(s: &Session) -> Session {
    restore_json(&snapshot_json(s)).expect("snapshot round-trip")
}

/// Comparable projection of an undo outcome.
fn report_line(id: pivot_undo::XformId, r: &Result<UndoReport, UndoError>) -> String {
    match r {
        Ok(r) => format!(
            "undo {id}: undone {:?} cand {} safety {} rev {} chases {} rebuilds {}",
            r.undone,
            r.candidates_considered,
            r.safety_checks,
            r.reversibility_checks,
            r.affecting_chases,
            r.rep_rebuilds
        ),
        Err(e) => format!("undo {id}: error {e}"),
    }
}

/// Run the canonical script through both engines, comparing at every step.
fn run_differential(seed: u64, shuffle: u64) {
    let shared_path = tmp(&format!("shared_{seed}_{shuffle}"));
    let oracle_path = tmp(&format!("oracle_{seed}_{shuffle}"));
    let _ = std::fs::remove_file(&shared_path);
    let _ = std::fs::remove_file(&oracle_path);

    let mut shared = prepare(seed, &cfg(), 8);
    let mut oracle = prepare(seed, &cfg(), 8).session;
    assert_eq!(fingerprint(&shared.session), fingerprint(&oracle));

    shared
        .session
        .set_journal(Journal::open(&shared_path).unwrap());
    oracle.set_journal(Journal::open(&oracle_path).unwrap());

    // Held checkpoints: every one must stay valid to the end of the script.
    // Alongside each we record the fingerprint and source at capture time.
    let mut held = vec![(
        fingerprint(&shared.session),
        shared.session.source(),
        shared.session.checkpoint(),
    )];

    let mut order = shared.applied.clone();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(shuffle));

    let mut step = |shared: &mut Session, oracle: &mut Session, op: &str| {
        // The oracle forgets its own heap every step: deep-copy semantics.
        let journal = oracle.take_journal().expect("oracle journal attached");
        *oracle = deep_copy(oracle);
        oracle.set_journal(journal);

        let (sr, or) = match op.strip_prefix("undo ") {
            Some(n) => {
                let id = pivot_undo::XformId(n.parse().unwrap());
                (
                    report_line(id, &shared.undo(id, Strategy::Regional)),
                    report_line(id, &oracle.undo(id, Strategy::Regional)),
                )
            }
            None => unreachable!("only undo ops scripted here"),
        };
        assert_eq!(sr, or, "step `{op}`: reports diverge");
        assert_eq!(
            shared.source(),
            oracle.source(),
            "step `{op}`: sources diverge"
        );
        assert_eq!(
            fingerprint(shared),
            fingerprint(oracle),
            "step `{op}`: fingerprints diverge"
        );
        held.push((fingerprint(shared), shared.source(), shared.checkpoint()));
    };

    for id in &order {
        step(&mut shared.session, &mut oracle, &format!("undo {}", id.0));
    }

    // Every checkpoint held across the whole undo phase still restores its
    // exact capture state — probed on clones so the script itself is
    // undisturbed, and in taken order, which is non-LIFO relative to the
    // mutations between them.
    for (i, (fp, src, cp)) in held.into_iter().enumerate() {
        let mut probe = shared.session.clone();
        probe.rollback(cp);
        assert_eq!(
            fingerprint(&probe),
            fp,
            "held checkpoint {i} observed a later mutation"
        );
        assert_eq!(probe.source(), src, "held checkpoint {i}: source drifted");
        probe.assert_consistent();
    }

    // A checkpoint held across an *edit*: the edit rewrites the pristine
    // baseline (`original`), which checkpoints deliberately do not capture,
    // so the program/log/history must restore exactly (source-level check)
    // even though the whole-session fingerprint legitimately moves.
    let pre_edit_src = shared.session.source();
    let pre_edit_cp = shared.session.checkpoint();

    // An edit plus the unsafe-removal sweep, same comparisons.
    let edit = gen_edit(&shared.session, seed.wrapping_mul(131).wrapping_add(7));
    let se = shared.session.edit(&edit);
    let journal = oracle.take_journal().expect("oracle journal attached");
    oracle = deep_copy(&oracle);
    oracle.set_journal(journal);
    let oe = oracle.edit(&edit);
    assert_eq!(se.is_ok(), oe.is_ok(), "edit outcome diverges");
    if se.is_ok() {
        shared.session.remove_unsafe(Strategy::Regional);
        oracle.remove_unsafe(Strategy::Regional);
    }
    assert_eq!(fingerprint(&shared.session), fingerprint(&oracle));
    assert_eq!(shared.session.source(), oracle.source());

    // Journal bytes: the shared engine's checkpoint records and op framing
    // must be byte-identical to the eager oracle's.
    let shared_bytes = std::fs::read(&shared_path).unwrap();
    let oracle_bytes = std::fs::read(&oracle_path).unwrap();
    assert_eq!(
        shared_bytes, oracle_bytes,
        "journal bytes diverge between shared and deep-copy engines"
    );

    // The pre-edit checkpoint, held across the edit and the sweep, rolls
    // the program/log/history back exactly.
    shared.session.rollback(pre_edit_cp);
    assert_eq!(
        shared.session.source(),
        pre_edit_src,
        "checkpoint held across an edit did not restore the program"
    );
    shared.session.assert_consistent();
    oracle.assert_consistent();

    let _ = std::fs::remove_file(&shared_path);
    let _ = std::fs::remove_file(&oracle_path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: shared-structure engine vs deep-copy oracle,
    /// byte-identical at every step, with all checkpoints held alive.
    #[test]
    fn shared_engine_matches_deep_copy_oracle(seed in 0u64..300, shuffle in 0u64..1000) {
        run_differential(seed, shuffle);
    }
}

/// Pin one deterministic case (fast, runs even under `--test-threads 1`
/// smoke filters) so the suite never silently shrinks to zero cases.
#[test]
fn shared_engine_matches_oracle_fixed_case() {
    run_differential(42, 7);
}

//! Determinism-differential suite for the parallel kernels (experiment
//! E14): the same seeded apply/undo/edit script, run on the one-thread
//! sequential oracle and on 2/4/8-thread work-stealing pools (including
//! scripted adversarial schedules), must produce **byte-identical**
//! behavior — program sources at every step, undo-report counters,
//! representation build counters, provenance trees, and the
//! edit-invalidation screen. Only wall time may differ.
//!
//! The oracle is not a mock: a sequential pool routes every kernel through
//! the pre-parallel code paths, so these properties pin the parallel
//! implementation to the original semantics.

use pivot_undo::{Pool, RepMode, SchedScript, Strategy, UndoError};
use pivot_workload::{gen_edit, prepare_with_pool, WorkloadCfg};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;

fn cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.4,
        figure1_chains: 1,
        ..Default::default()
    }
}

/// Full behavioral fingerprint of the canonical script under `pool`.
fn fingerprint(seed: u64, shuffle: u64, pool: Pool) -> String {
    let mut fp = String::new();
    let mut p = prepare_with_pool(seed, &cfg(), 10, RepMode::Batch, pool);
    let _ = writeln!(fp, "applied {:?}", p.applied);
    let _ = writeln!(fp, "built:\n{}", p.session.source());
    let mut order = p.applied.clone();
    order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(shuffle));
    for id in order {
        match p.session.undo(id, Strategy::Regional) {
            Ok(r) => {
                let _ = writeln!(
                    fp,
                    "undo {id}: undone {:?} cand {} safety {} rev {} chases {} rebuilds {}",
                    r.undone,
                    r.candidates_considered,
                    r.safety_checks,
                    r.reversibility_checks,
                    r.affecting_chases,
                    r.rep_rebuilds
                );
            }
            Err(UndoError::AlreadyUndone(_)) => {
                let _ = writeln!(fp, "undo {id}: already undone");
            }
            Err(e) => {
                let _ = writeln!(fp, "undo {id}: error {e}");
            }
        }
        let _ = writeln!(fp, "{}", p.session.source());
    }
    for t in &p.session.explanations {
        let _ = writeln!(fp, "{}", t.render());
    }
    let _ = writeln!(
        fp,
        "rep builds {} incr {}",
        p.session.rep.builds, p.session.rep.incr_updates
    );
    p.session.assert_consistent();
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole invariant: 1 vs 2/4/8 threads, byte-identical fingerprints.
    #[test]
    fn script_identical_across_thread_counts(seed in 0u64..400, shuffle in 0u64..1000) {
        let oracle = fingerprint(seed, shuffle, Pool::new(1));
        for threads in [2usize, 4, 8] {
            let par = fingerprint(seed, shuffle, Pool::new(threads));
            prop_assert_eq!(&oracle, &par, "threads = {}", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adversarial schedules (seeded yield/sleep perturbation of every
    /// pool task) must not change behavior, only interleavings.
    #[test]
    fn scripted_schedules_are_behavior_invariant(seed in 0u64..200, sched in 0u64..64) {
        let oracle = fingerprint(seed, seed ^ 0x5bd1, Pool::new(1));
        let pool = Pool::new(4).with_script(SchedScript::new(sched));
        let par = fingerprint(seed, seed ^ 0x5bd1, pool);
        prop_assert_eq!(&oracle, &par, "sched seed = {}", sched);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch undo (parallel read-only planning + sequential execution)
    /// ends in the same program and removal set as individual sequential
    /// undos in the same order.
    #[test]
    fn batch_undo_matches_individual_undos(seed in 0u64..200, shuffle in 0u64..1000) {
        let mut batch = prepare_with_pool(seed, &cfg(), 10, RepMode::Batch, Pool::new(4));
        prop_assume!(batch.applied.len() >= 3);
        let mut order = batch.applied.clone();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(shuffle));
        let out = batch.session.undo_batch(&order, Strategy::Regional)
            .map_err(|e| TestCaseError::fail(format!("batch: {e}")))?;

        let mut indiv = prepare_with_pool(seed, &cfg(), 10, RepMode::Batch, Pool::new(1));
        let mut undone = Vec::new();
        let mut skipped = Vec::new();
        for &id in &order {
            match indiv.session.undo(id, Strategy::Regional) {
                Ok(r) => undone.extend(r.undone),
                Err(UndoError::AlreadyUndone(x)) => skipped.push(x),
                Err(e) => return Err(TestCaseError::fail(format!("individual: {e}"))),
            }
        }
        prop_assert_eq!(out.undone(), undone);
        prop_assert_eq!(out.skipped, skipped);
        prop_assert_eq!(batch.session.source(), indiv.session.source());
        batch.session.assert_consistent();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The edit-invalidation path — parallel safety screen plus selective
    /// removal — is identical at 1 vs 4 threads.
    #[test]
    fn edit_invalidation_identical_across_pools(seed in 0u64..200, eseed in 0u64..1000) {
        let run = |threads: usize| -> Result<(Vec<_>, Vec<_>, Vec<_>, String), TestCaseError> {
            let mut p = prepare_with_pool(seed, &cfg(), 8, RepMode::Batch, Pool::new(threads));
            let edit = gen_edit(&p.session, eseed);
            if p.session.edit(&edit).is_err() {
                return Ok((Vec::new(), Vec::new(), Vec::new(), p.session.source()));
            }
            let found = p.session.find_unsafe();
            let inv = p.session.remove_unsafe(Strategy::Regional);
            p.session.assert_consistent();
            Ok((found, inv.removed, inv.retired, p.session.source()))
        };
        prop_assert_eq!(run(1)?, run(4)?);
    }
}

/// `PIVOT_THREADS=1` (or unset) must select the sequential oracle; the
/// resolution rules are part of the public contract.
#[test]
fn thread_resolution_contract() {
    assert_eq!(pivot_par::resolve_threads(Some(1)), 1);
    assert_eq!(pivot_par::resolve_threads(Some(5)), 5);
    assert!(pivot_par::resolve_threads(Some(0)) >= 1);
    assert!(Pool::new(1).is_sequential());
    assert!(!Pool::new(2).is_sequential());
}

// Pool-metrics assertions live in `tests/par_metrics.rs` (their own
// process — the global registry would race with the parallel cases here).

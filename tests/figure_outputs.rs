//! Golden checks for the regenerated figures: the exact textual artifacts
//! the paper prints (Figure 1's transformed code, Figure 2's annotation
//! tags, Table 4's paper rows) as rendered by the library, pinned so
//! regressions in printing/annotation bookkeeping are caught.

use pivot_undo::engine::Session;
use pivot_undo::XformKind;

const FIG1: &str = "\
D = E + F
C = 1
do i = 1, 100
  do j = 1, 50
    A(j) = B(j) + C
    R(i, j) = E + F
  enddo
enddo
";

fn transformed() -> Session {
    let mut s = Session::from_source(FIG1).unwrap();
    for k in [
        XformKind::Cse,
        XformKind::Ctp,
        XformKind::Inx,
        XformKind::Icm,
    ] {
        s.apply_kind(k).unwrap();
    }
    s
}

#[test]
fn figure1_transformed_source_golden() {
    assert_eq!(
        transformed().source(),
        "\
D = E + F
C = 1
do j = 1, 50
  A(j) = B(j) + 1
  do i = 1, 100
    R(i, j) = D
  enddo
enddo
"
    );
}

#[test]
fn figure2_annotation_tags_golden() {
    let s = transformed();
    let ann = s.log.render_annotations(&s.prog, &s.history.stamp_order());
    // One modify per rewrite (cse=1, ctp=2), two header modifies for the
    // interchange (3), one move for the hoist (4).
    assert_eq!(ann.matches("md1").count(), 1, "{ann}");
    assert_eq!(ann.matches("md2").count(), 1, "{ann}");
    assert_eq!(ann.matches("md3").count(), 2, "{ann}");
    assert_eq!(ann.matches("mv4").count(), 1, "{ann}");
    // The CSE annotation sits on the replaced expression (now `D`).
    assert!(ann.contains("md1 on expr D"), "{ann}");
    // The CTP annotation sits on the propagated constant.
    assert!(ann.contains("md2 on expr 1"), "{ann}");
    // The ICM move annotates the hoisted statement (label 5).
    assert!(ann.contains("mv4 on stmt 5"), "{ann}");
}

#[test]
fn figure1_region_tree_golden() {
    let s = Session::from_source(FIG1).unwrap();
    let dump = s.rep.pdg(&s.prog).dump(&s.prog, s.rep.ddg(&s.prog));
    // Three region nodes: root, i-loop body, j-loop body.
    assert!(dump.contains("R0"));
    assert!(dump.contains("R1"));
    assert!(dump.contains("R2"));
    assert!(dump.contains("(root)"));
    assert!(dump.contains("members=[1,2,3]"), "{dump}");
}

#[test]
fn table4_paper_rows_golden() {
    use pivot_undo::interact::{paper_rows, render};
    let mut m = [[false; 10]; 10];
    for (k, marks) in paper_rows() {
        for (i, &b) in marks.iter().enumerate() {
            m[k.index()][i] = b == b'x';
        }
    }
    let text = render(&m);
    // The DCE row exactly as the paper prints it.
    assert!(
        text.contains(" DCE    x   x   -   x   -   x   -   -   x   x"),
        "{text}"
    );
    assert!(
        text.contains(" INX    -   -   -   -   -   x   -   -   x   x"),
        "{text}"
    );
}

#[test]
fn table2_patterns_golden() {
    // The recorded Table 2 shapes for the Figure 1 transformations.
    let s = transformed();
    let shapes: Vec<(&str, String, String)> = s
        .history
        .active()
        .map(|r| (r.kind.abbrev(), r.pre.shape.clone(), r.post.shape.clone()))
        .collect();
    assert_eq!(shapes[0].0, "CSE");
    assert_eq!(shapes[0].1, "Stmt S_i: A = B op C; Stmt S_j: D = B op C");
    assert_eq!(shapes[0].2, "Stmt S_j: D = A");
    assert_eq!(shapes[1].0, "CTP");
    assert!(shapes[1].1.contains("type(opr_2) == const"));
    assert_eq!(shapes[2].0, "INX");
    assert_eq!(shapes[2].1, "Tight Loops (L1, L2)");
    assert_eq!(shapes[2].2, "Tight Loops (L2, L1)");
    assert_eq!(shapes[3].0, "ICM");
    assert_eq!(shapes[3].1, "Loop L1; Stmt S_i");
    assert!(shapes[3].2.contains("orig_location"));
}

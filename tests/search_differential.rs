//! The stochastic search's correctness battery (ISSUE 9 satellites):
//!
//! * **Fork-oracle differential** — the same seeded move sequence runs
//!   through (a) the undo-reject loop and (b) a `Session::fork`-and-discard
//!   oracle that never undoes. Program source, structural digest, active
//!   history length, cost, and every move-log line must agree after every
//!   rejected move and at termination ([`pivot_workload::searchcheck`]
//!   compares in lockstep). The full session snapshot fingerprint is
//!   deliberately *not* compared: it hashes arena node ids, tombstones, and
//!   the append-only history, which legitimately differ between "applied
//!   then undone" and "never applied" — the paper's claim is about the
//!   program and the active transformation set, and that is what the
//!   digest pins.
//! * **Determinism** — same seed ⇒ byte-identical move log, accepted set,
//!   and final digest across worker-pool sizes (the `PIVOT_THREADS` axis,
//!   pinned here with explicit `Pool::new(1)` / `Pool::new(4)`) and across
//!   `RepMode::{Batch, Incremental}`; plus a `Checked`-mode smoke run
//!   (panic-on-divergence incremental oracle).
//! * **Cost function** — `run_counted` steps agree exactly with fuel
//!   consumption, are input-deterministic, and an `ExecError` scores as
//!   worst-case cost in the acceptance rule instead of crashing the walk.

use pivot_lang::interp::{self, ExecError, Limits};
use pivot_lang::parser::parse;
use pivot_undo::{Pool, RepMode};
use pivot_workload::search::{
    accepts, cost_of, run_search, search_session, RejectMode, Search, SearchCfg, WORST_COST,
};
use pivot_workload::searchcheck;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_cfg(seed: u64) -> SearchCfg {
    SearchCfg {
        seed,
        moves: 250,
        fragments: 8,
        plateau: 120,
        max_restarts: 2,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// (a) undo-reject vs (b) fork-oracle: lockstep agreement on every
    /// move under many seeds.
    #[test]
    fn undo_reject_loop_matches_fork_oracle(seed in 0u64..400) {
        let out = searchcheck::run_cfg(&small_cfg(seed));
        prop_assert!(
            out.mismatches.is_empty(),
            "seed {seed}:\n{}",
            out.report
        );
    }

    /// `run_counted` is exact: a run that spent `n` steps completes under
    /// a fuel budget of exactly `n` and exhausts under `n - 1`.
    #[test]
    fn counted_steps_agree_with_fuel(seed in 0u64..200) {
        let cfg = pivot_workload::WorkloadCfg { fragments: 6, ..Default::default() };
        let prog = pivot_workload::gen_program(seed, &cfg);
        let input = pivot_workload::gen_inputs(seed, 64);
        let full = interp::run_counted(&prog, &input, Limits::default()).expect("runs");
        prop_assert!(full.steps > 0);
        let exact = interp::run_counted(&prog, &input, Limits { fuel: full.steps })
            .expect("exact fuel suffices");
        prop_assert_eq!(exact.steps, full.steps);
        prop_assert_eq!(&exact.output, &full.output);
        let starved = interp::run_counted(&prog, &input, Limits { fuel: full.steps - 1 });
        prop_assert_eq!(starved, Err(ExecError::FuelExhausted));
        // Input-deterministic: the same program on the same input always
        // spends the same number of steps.
        let again = interp::run_counted(&prog, &input, Limits::default()).expect("runs");
        prop_assert_eq!(again.steps, full.steps);
    }
}

/// The proptest sweep must actually exercise the reject path — pin one
/// seed known to reject through undo so the suite can never silently
/// shrink to walks that accept everything.
#[test]
fn differential_covers_undo_rejects() {
    let out = searchcheck::run(1, 3_000);
    assert!(out.passed(), "{}", out.report);
    assert!(out.rejected > 0, "no rejected move in 3000 proposals");
    assert_eq!(
        out.rollback_rejects, 0,
        "newest-record undo should never fall back"
    );
}

/// Same seed ⇒ byte-identical move log, accepted set, and final digest at
/// 1 and 4 worker threads (the engine's parallel kernels must not leak
/// schedule into the walk).
#[test]
fn search_is_deterministic_across_thread_counts() {
    let cfg = SearchCfg {
        seed: 11,
        moves: 500,
        fragments: 8,
        ..Default::default()
    };
    let run_with = |threads: usize| {
        let mut session = search_session(&cfg);
        session.set_pool(Pool::new(threads));
        Search::new(session, cfg.clone(), RejectMode::UndoReject).run()
    };
    let one = run_with(1);
    let four = run_with(4);
    assert!(one.accepted >= 1, "walk did nothing");
    assert_eq!(one.move_log, four.move_log);
    assert_eq!(one.accepted_moves, four.accepted_moves);
    assert_eq!(one.digest, four.digest);
    assert_eq!(one.final_source, four.final_source);
}

/// Same seed ⇒ identical walk under batch and incremental representation
/// refresh.
#[test]
fn search_is_deterministic_across_rep_modes() {
    let cfg = SearchCfg {
        seed: 13,
        moves: 500,
        fragments: 8,
        ..Default::default()
    };
    let run_in = |mode: RepMode| {
        let mut session = search_session(&cfg);
        session.set_rep_mode(mode);
        Search::new(session, cfg.clone(), RejectMode::UndoReject).run()
    };
    let batch = run_in(RepMode::Batch);
    let incr = run_in(RepMode::Incremental);
    assert!(batch.accepted >= 1, "walk did nothing");
    assert_eq!(batch.move_log, incr.move_log);
    assert_eq!(batch.accepted_moves, incr.accepted_moves);
    assert_eq!(batch.digest, incr.digest);
    assert_eq!(batch.final_source, incr.final_source);
}

/// `Checked` rep mode panics on any batch/incremental divergence; a clean
/// run through the search loop is the smoke test.
#[test]
fn search_survives_checked_rep_mode() {
    let cfg = SearchCfg {
        seed: 17,
        moves: 200,
        fragments: 6,
        ..Default::default()
    };
    let mut session = search_session(&cfg);
    session.set_rep_mode(RepMode::Checked);
    let out = Search::new(session, cfg, RejectMode::UndoReject).run();
    assert_eq!(out.output_divergences, 0);
}

/// An `ExecError` during scoring (here: fuel starvation) is worst-case
/// cost, not a crash: the walk completes, and a failed candidate can never
/// beat a finite-cost state.
#[test]
fn exec_errors_score_worst_case_not_crash() {
    let p = parse("s = 0\ndo i = 1, 50\n  s = s + i\nenddo\nwrite s\n").unwrap();
    assert_eq!(cost_of(&p, &[vec![]], 5), WORST_COST);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..500 {
        assert!(
            !accepts(&mut rng, 1e12, 10, WORST_COST),
            "acceptance rule took a failed candidate over a finite state"
        );
    }
    // A whole walk whose baseline cannot even run still terminates cleanly.
    let cfg = SearchCfg {
        seed: 23,
        moves: 120,
        fragments: 6,
        fuel: 3,
        ..Default::default()
    };
    let out = run_search(&cfg);
    assert_eq!(out.proposed, 120);
    assert_eq!(out.initial_cost, WORST_COST);
}

//! Scratch review probe: append-after-torn-tail behavior.

use pivot_lang::parser::parse;
use pivot_undo::engine::Session;
use pivot_undo::{Journal, XformKind};
use std::path::PathBuf;

const SRC: &str = "d = e + f\nr = e + f\nwrite r\nwrite d\nx = 3 * 4\nwrite x\n";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pivot_review_probe");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn append_after_torn_tail() {
    let path = tmp("probe.journal");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    s.apply_kind(XformKind::Cse).expect("e + f recurs");
    drop(s);

    // Simulate a crash mid-append: a strict prefix of a begin record with
    // no trailing newline (exactly what servecheck's tear does).
    let text = std::fs::read_to_string(&path).unwrap();
    let begin = text
        .lines()
        .find(|l| l.contains("\"rec\":\"begin\""))
        .unwrap()
        .to_string();
    let stub = &begin[..begin.len() / 2];
    let mut bytes = text.clone().into_bytes();
    bytes.extend_from_slice(stub.as_bytes());
    std::fs::write(&path, &bytes).unwrap();

    // First recovery: torn tail discarded, fine.
    let prog = parse(SRC).unwrap();
    let rec = Session::recover(prog, &path).expect("first recovery succeeds");
    let mut s2 = rec.session;
    eprintln!("first recovery: committed={}", rec.committed);

    // Re-attach journal the way the daemon does, apply one more op.
    s2.set_journal(Journal::open(&path).unwrap());
    s2.apply_kind(XformKind::Cfo).expect("3 * 4 folds");
    drop(s2);

    eprintln!("journal now:\n{}", std::fs::read_to_string(&path).unwrap());

    // Second recovery: does the committed op survive?
    let prog2 = parse(SRC).unwrap();
    match Session::recover(prog2, &path) {
        Ok(r) => eprintln!(
            "second recovery OK: committed={} aborted={} discarded={}",
            r.committed, r.aborted, r.discarded
        ),
        Err(e) => panic!("second recovery failed: {e}"),
    }
}

//! Experiment E7/E8 invariants, property-tested on generated workloads:
//!
//! 1. undoing all transformations in any order restores the source exactly;
//! 2. every intermediate state preserves program semantics;
//! 3. the set removed by independent-order undo of one target is a subset
//!    of what reverse-order undo to the same target removes;
//! 4. all three strategies remove the same set;
//! 5. history/log/program stay mutually consistent throughout.

use pivot_lang::equiv::programs_equal;
use pivot_lang::interp;
use pivot_undo::engine::Strategy;
use pivot_undo::UndoError;
use pivot_workload::{gen_inputs, prepare, WorkloadCfg};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn cfg() -> WorkloadCfg {
    WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.4,
        figure1_chains: 1,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_order_roundtrip_with_intermediate_semantics(seed in 0u64..300, shuffle in 0u64..1000) {
        let mut prepared = prepare(seed, &cfg(), 10);
        prop_assume!(prepared.applied.len() >= 3);
        let inputs = gen_inputs(seed, 96);
        let expected = interp::run_default(&prepared.session.original, &inputs).unwrap();
        let mut order = prepared.applied.clone();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(shuffle));
        for id in order {
            match prepared.session.undo(id, Strategy::Regional) {
                Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("undo {id}: {e}"))),
            }
            let now = interp::run_default(&prepared.session.prog, &inputs).unwrap();
            prop_assert_eq!(&now, &expected, "semantics broke mid-undo");
            prepared.session.assert_consistent();
        }
        prop_assert!(programs_equal(&prepared.session.prog, &prepared.session.original));
        prop_assert!(prepared.session.log.actions.is_empty());
    }

    #[test]
    fn independent_removes_subset_of_reverse(seed in 0u64..200, pick in 0usize..64) {
        let prepared = prepare(seed, &cfg(), 10);
        prop_assume!(prepared.applied.len() >= 3);
        let target = prepared.applied[pick % prepared.applied.len()];

        let mut a = prepare(seed, &cfg(), 10);
        let ra = a.session.undo(target, Strategy::Regional)
            .map_err(|e| TestCaseError::fail(format!("independent: {e}")))?;

        let mut b = prepare(seed, &cfg(), 10);
        let rb = b.session.undo_reverse_to(target)
            .map_err(|e| TestCaseError::fail(format!("reverse: {e}")))?;

        for id in &ra.undone {
            prop_assert!(
                rb.undone.contains(id),
                "independent removed {id} which reverse (to the same target) kept"
            );
        }
        prop_assert!(ra.undone.len() <= rb.undone.len());
        // Both end in semantically original programs.
        let inputs = gen_inputs(seed, 96);
        let expected = interp::run_default(&a.session.original, &inputs).unwrap();
        prop_assert_eq!(interp::run_default(&a.session.prog, &inputs).unwrap(), expected.clone());
        prop_assert_eq!(interp::run_default(&b.session.prog, &inputs).unwrap(), expected);
    }

    #[test]
    fn strategies_remove_identical_sets(seed in 0u64..150, pick in 0usize..64) {
        let prepared = prepare(seed, &cfg(), 10);
        prop_assume!(prepared.applied.len() >= 3);
        let target = prepared.applied[pick % prepared.applied.len()];
        let mut outcomes = Vec::new();
        for strategy in [Strategy::Regional, Strategy::NoHeuristic, Strategy::FullScan] {
            let mut p = prepare(seed, &cfg(), 10);
            let mut undone = p.session.undo(target, strategy)
                .map_err(|e| TestCaseError::fail(format!("{strategy:?}: {e}")))?
                .undone;
            undone.sort();
            outcomes.push((strategy, undone, p.session.source()));
        }
        for w in outcomes.windows(2) {
            prop_assert_eq!(
                &w[0].1, &w[1].1,
                "{:?} and {:?} removed different sets", w[0].0, w[1].0
            );
            prop_assert_eq!(&w[0].2, &w[1].2, "sources diverged");
        }
    }

    /// The fair reverse-order baseline (undo to target, then re-apply the
    /// collateral): every re-applied transformation must be one that the
    /// reverse pass removed, the target must stay removed, semantics hold,
    /// and the whole procedure is byte-identical through the sequential
    /// and parallel planners.
    #[test]
    fn reverse_redo_is_sound_and_pool_invariant(seed in 0u64..200, pick in 0usize..64) {
        let probe = prepare(seed, &cfg(), 10);
        prop_assume!(probe.applied.len() >= 3);
        let target = probe.applied[pick % probe.applied.len()];

        let run = |threads: usize| -> Result<_, TestCaseError> {
            let mut p = pivot_workload::prepare_with_pool(
                seed, &cfg(), 10, pivot_undo::RepMode::Batch, pivot_undo::Pool::new(threads));
            let (report, redone) = p.session.undo_reverse_redo(target)
                .map_err(|e| TestCaseError::fail(format!("{threads} threads: {e}")))?;
            p.session.assert_consistent();
            Ok((report.undone, redone, p.session.source(), p.session))
        };
        let (undone, redone, source, session) = run(1)?;
        // Soundness of the sequential result.
        prop_assert!(undone.contains(&target));
        prop_assert!(redone < undone.len(), "the target itself must not be re-applied");
        prop_assert_eq!(
            session.history.get(target).unwrap().state,
            pivot_undo::XformState::Undone
        );
        let inputs = gen_inputs(seed, 96);
        let expected = interp::run_default(&session.original, &inputs).unwrap();
        prop_assert_eq!(interp::run_default(&session.prog, &inputs).unwrap(), expected);
        // Pool invariance.
        for threads in [2usize, 4] {
            let (u, r, s, _) = run(threads)?;
            prop_assert_eq!(&undone, &u, "undone diverged at {} threads", threads);
            prop_assert_eq!(redone, r, "redone diverged at {} threads", threads);
            prop_assert_eq!(&source, &s, "source diverged at {} threads", threads);
        }
    }

    #[test]
    fn pruning_never_increases_safety_checks(seed in 0u64..100, pick in 0usize..64) {
        let prepared = prepare(seed, &cfg(), 10);
        prop_assume!(prepared.applied.len() >= 3);
        let target = prepared.applied[pick % prepared.applied.len()];
        let mut counts = Vec::new();
        for strategy in [Strategy::Regional, Strategy::NoHeuristic, Strategy::FullScan] {
            let mut p = prepare(seed, &cfg(), 10);
            let r = p.session.undo(target, strategy)
                .map_err(|e| TestCaseError::fail(format!("{strategy:?}: {e}")))?;
            counts.push(r.safety_checks);
        }
        // Regional ≤ NoHeuristic ≤ FullScan.
        prop_assert!(counts[0] <= counts[1], "heuristic increased checks: {counts:?}");
        prop_assert!(counts[1] <= counts[2], "regional filter increased checks: {counts:?}");
    }
}

#[test]
fn figure1_chain_dense_interactions_roundtrip() {
    // A workload made only of Figure 1 chains maximizes interactions.
    let cfg = WorkloadCfg {
        fragments: 0,
        noise_ratio: 0.0,
        kinds: None,
        figure1_chains: 4,
    };
    for seed in 0..8u64 {
        let mut prepared = prepare(seed, &cfg, 16);
        assert!(
            prepared.applied.len() >= 8,
            "chains should apply many transformations"
        );
        let mut order = prepared.applied.clone();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed * 31 + 1));
        for id in order {
            match prepared.session.undo(id, Strategy::Regional) {
                Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }
        assert!(programs_equal(
            &prepared.session.prog,
            &prepared.session.original
        ));
    }
}

#[test]
fn forked_sessions_explore_alternatives_independently() {
    // The paper's motivating workflow: try different alternatives by
    // forking, keep the best.
    let base = prepare(12, &cfg(), 4);
    let mut a = base.session.fork();
    let mut b = base.session.fork();
    // Branch A: undo the first transformation; branch B: apply more.
    let first = base.applied[0];
    a.undo(first, Strategy::Regional).unwrap();
    while b.session_apply_any() {}
    // The branches diverged; the base-derived invariants hold in both.
    a.assert_consistent();
    b.assert_consistent();
    assert!(a.history.active_len() < b.history.active_len());
    // Both remain semantically equal to the source.
    let inputs = gen_inputs(12, 96);
    let expected = interp::run_default(&a.original, &inputs).unwrap();
    assert_eq!(interp::run_default(&a.prog, &inputs).unwrap(), expected);
    assert_eq!(interp::run_default(&b.prog, &inputs).unwrap(), expected);
}

trait ApplyAny {
    fn session_apply_any(&mut self) -> bool;
}

impl ApplyAny for pivot_undo::engine::Session {
    fn session_apply_any(&mut self) -> bool {
        for k in pivot_undo::ALL_KINDS {
            if self.apply_kind(k).is_some() {
                return true;
            }
        }
        false
    }
}

#[test]
fn interaction_heuristic_prunes_checks_beyond_region() {
    // The dead statement reads `c`, so undoing its DCE puts `c` in the
    // affected region; the later CTP (propagating c) overlaps the region —
    // but DCE→CTP is unmarked in Table 4, so the Regional strategy skips
    // the safety check entirely while NoHeuristic runs it. Outcomes agree.
    use pivot_undo::engine::Session;
    use pivot_undo::interact::{default_matrix, may_affect};
    use pivot_undo::XformKind;
    assert!(
        !may_affect(&default_matrix(), XformKind::Dce, XformKind::Ctp),
        "the paper's DCE row leaves CTP unmarked"
    );
    let src = "c = 5\nd = c + 1\nu = c + 2\nwrite u\n";
    let build = || {
        let mut s = Session::from_source(src).unwrap();
        let dce = s.apply_kind(XformKind::Dce).expect("d = c + 1 is dead");
        let ctp = s.apply_kind(XformKind::Ctp).expect("c propagates");
        (s, dce, ctp)
    };
    let (mut a, dce, ctp_a) = build();
    let ra = a.undo(dce, Strategy::Regional).unwrap();
    let (mut b, dce_b, ctp_b) = build();
    let rb = b.undo(dce_b, Strategy::NoHeuristic).unwrap();
    assert_eq!(ra.undone, rb.undone);
    assert_eq!(a.source(), b.source());
    assert_eq!(ra.safety_checks, 0, "heuristic skips the unmarked CTP");
    assert_eq!(rb.safety_checks, 1, "region alone still checks it");
    // The CTP survives in both.
    assert_eq!(
        a.history.get(ctp_a).unwrap().state,
        pivot_undo::XformState::Active
    );
    assert_eq!(
        b.history.get(ctp_b).unwrap().state,
        pivot_undo::XformState::Active
    );
}

#[test]
fn undo_last_repeats_like_the_in_order_scheme() {
    // Consecutive undo_last calls reverse the whole sequence, newest first.
    let mut p = prepare(33, &cfg(), 8);
    let n = p.session.history.active_len();
    assert!(n >= 4);
    let mut undone = Vec::new();
    while let Some(r) = p.session.undo_last().unwrap() {
        assert_eq!(r.undone.len(), 1, "in-order undo is always immediate");
        assert_eq!(r.affecting_chases, 0);
        undone.extend(r.undone);
    }
    assert_eq!(undone.len(), n);
    // Newest-first order.
    for w in undone.windows(2) {
        assert!(w[0] > w[1]);
    }
    assert!(programs_equal(&p.session.prog, &p.session.original));
}

//! Pool observability contract, isolated in its own test binary because it
//! reads the process-wide metrics registry: the sequential oracle must not
//! touch any `par.*` counter (proving the one-thread path is the unchanged
//! code), while a parallel pool must record its activity.

use pivot_undo::{Pool, RepMode, Strategy, UndoError};
use pivot_workload::{prepare_with_pool, WorkloadCfg};

fn run(threads: usize) {
    let cfg = WorkloadCfg {
        fragments: 6,
        figure1_chains: 1,
        ..Default::default()
    };
    let mut p = prepare_with_pool(31, &cfg, 8, RepMode::Batch, Pool::new(threads));
    let order = p.applied.clone();
    for id in order {
        match p.session.undo(id, Strategy::Regional) {
            Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
            Err(e) => panic!("undo {id}: {e}"),
        }
    }
    p.session.assert_consistent();
}

#[test]
fn par_metrics_track_pool_activity_only() {
    let m = pivot_obs::metrics::global();
    let snap = |name: &str| m.counter(name).get();
    let names = ["par.runs", "par.tasks", "par.prefetch.batches"];
    let before: Vec<u64> = names.iter().map(|n| snap(n)).collect();
    run(1);
    let after_seq: Vec<u64> = names.iter().map(|n| snap(n)).collect();
    assert_eq!(
        before, after_seq,
        "sequential run must not touch par.* metrics"
    );
    run(4);
    assert!(
        snap("par.runs") > after_seq[0],
        "parallel run must record pool activity"
    );
    assert!(snap("par.tasks") > after_seq[1]);
}

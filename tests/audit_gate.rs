//! Audit gate: drive soak-style sessions (random interleavings of apply,
//! independent-order undo, and edit + invalidation sweeps) and run the
//! independent auditor at every step boundary.
//!
//! The auditor re-derives legality with its own structured-AST dataflow,
//! rebuilds the representation from scratch, cross-checks the stamp
//! bookkeeping, and replays the log's inverses — all without calling the
//! engine's safety code. Two properties are enforced:
//!
//! 1. **N-version agreement** — the set of transformations the audit's
//!    legality family flags must equal the engine's own `find_unsafe()`
//!    verdicts at every step. Disabling conditions *do* transiently trip
//!    mid-session (e.g. an undo can unresolve the anchor a DCE's
//!    restoration needs); both implementations must trip on exactly the
//!    same records.
//! 2. **Clean families** — the structural and semantic families must
//!    report nothing on engine-produced states, and all three families
//!    must be silent at reconciled boundaries (`find_unsafe()` empty).
//!
//! The test honors `PIVOT_THREADS`, so the CI matrix exercises the
//! sequential oracle and the parallel screening paths against the same
//! gate.

use pivot_audit::{audit_session, AuditConfig, AuditSpan, Family};
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::{UndoError, XformId};
use pivot_workload::{gen_program, WorkloadCfg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Audit and cross-check against the engine's own screening.
fn assert_agreement(session: &Session, cfg: &AuditConfig, seed: u64, when: &str) {
    let report = audit_session(session, cfg);
    for f in &report.findings {
        assert!(
            f.family != Family::Structural && f.family != Family::Semantic,
            "seed {seed}, {when}: non-legality finding on an engine-produced state\n{}",
            report.render_human()
        );
    }
    let flagged: BTreeSet<XformId> = report
        .findings
        .iter()
        .filter(|f| f.family == Family::Legality)
        .filter_map(|f| match f.span {
            AuditSpan::Xform(id) => Some(id),
            _ => None,
        })
        .collect();
    let engine: BTreeSet<XformId> = session.find_unsafe().into_iter().collect();
    assert_eq!(
        flagged,
        engine,
        "seed {seed}, {when}: audit legality verdicts disagree with the engine\n\
         audit flagged {flagged:?}, engine flagged {engine:?}\n{}",
        report.render_human()
    );
}

fn audited_soak(seed: u64, steps: usize) {
    let cfg = WorkloadCfg {
        fragments: 6,
        noise_ratio: 0.3,
        figure1_chains: 1,
        ..Default::default()
    };
    let mut session = Session::new(gen_program(seed, &cfg));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA0D1);
    let mut live: Vec<XformId> = Vec::new();
    // Until the first edit the baseline is the untouched source, so the
    // stronger pristine contract (reverse replay must land exactly on it)
    // is in force.
    let mut audit_cfg = AuditConfig {
        pristine: true,
        ..AuditConfig::default()
    };

    assert_agreement(&session, &audit_cfg, seed, "before any step");

    for step in 0..steps {
        match rng.gen_range(0..9) {
            0..=4 => {
                let opps = session.find_all();
                if opps.is_empty() {
                    continue;
                }
                let opp = opps[rng.gen_range(0..opps.len())].clone();
                if let Ok(id) = session.apply(&opp) {
                    live.push(id);
                }
            }
            5..=7 => {
                if live.is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..live.len());
                let id = live[idx];
                match session.undo(id, Strategy::Regional) {
                    Ok(report) => live.retain(|x| !report.undone.contains(x)),
                    Err(UndoError::AlreadyUndone(_)) => {
                        live.remove(idx);
                    }
                    Err(e) => panic!("seed {seed} step {step}: undo {id} failed: {e}"),
                }
            }
            _ => {
                let edit = pivot_workload::gen_edit(&session, rng.gen());
                if session.edit(&edit).is_err() {
                    continue;
                }
                audit_cfg.pristine = false;
                let report = session.remove_unsafe(Strategy::Regional);
                live.retain(|x| !report.removed.contains(x) && !report.retired.contains(x));
                assert!(
                    session.find_unsafe().is_empty(),
                    "seed {seed} step {step}: unsafe remain after removal"
                );
                // A reconciled boundary: with the engine's screening empty,
                // agreement means all three families are silent here.
            }
        }
        assert_agreement(&session, &audit_cfg, seed, &format!("after step {step}"));
    }

    // Unwind everything; a fully-undone session must audit completely
    // clean (nothing active means nothing left to disagree about).
    for id in session.history.active().map(|r| r.id).collect::<Vec<_>>() {
        match session.undo(id, Strategy::Regional) {
            Ok(_) | Err(UndoError::AlreadyUndone(_)) => {}
            Err(e) => panic!("seed {seed} final undo {id}: {e}"),
        }
    }
    let report = audit_session(&session, &audit_cfg);
    assert!(
        report.is_clean(),
        "seed {seed}, after full unwind: auditor reported findings\n{}",
        report.render_human()
    );
}

#[test]
fn audit_gate_seed_1() {
    audited_soak(1, 40);
}

#[test]
fn audit_gate_seed_2() {
    audited_soak(2, 40);
}

#[test]
fn audit_gate_seed_3() {
    audited_soak(3, 40);
}

#[test]
fn audit_gate_seed_7() {
    audited_soak(7, 40);
}

#[test]
fn audit_gate_seed_11() {
    audited_soak(11, 40);
}

/// Apply-only pristine marathon: no edits ever happen, so the strict
/// reverse-replay-to-source contract (`PV202`) holds across a long pure
/// transformation prefix and its staged unwinding.
#[test]
fn audit_gate_pristine_apply_then_unwind() {
    for seed in [5u64, 9, 13] {
        let cfg = WorkloadCfg {
            fragments: 6,
            noise_ratio: 0.3,
            figure1_chains: 1,
            ..Default::default()
        };
        let mut session = Session::new(gen_program(seed, &cfg));
        let audit_cfg = AuditConfig {
            pristine: true,
            ..AuditConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9021);
        let mut applied = Vec::new();
        for _ in 0..12 {
            let opps = session.find_all();
            if opps.is_empty() {
                break;
            }
            let opp = opps[rng.gen_range(0..opps.len())].clone();
            if let Ok(id) = session.apply(&opp) {
                applied.push(id);
            }
            assert_agreement(&session, &audit_cfg, seed, "pristine apply");
        }
        // Undo in a scrambled (independent) order.
        while !applied.is_empty() {
            let idx = rng.gen_range(0..applied.len());
            let id = applied.remove(idx);
            match session.undo(id, Strategy::Regional) {
                Ok(report) => applied.retain(|x| !report.undone.contains(x)),
                Err(UndoError::AlreadyUndone(_)) => {}
                Err(e) => panic!("seed {seed}: pristine undo {id}: {e}"),
            }
            assert_agreement(&session, &audit_cfg, seed, "pristine unwind");
        }
    }
}

//! Semantic-preservation property tests: every transformation in the
//! catalog, applied anywhere the detector allows, leaves the interpreter's
//! observable output unchanged — the foundational guarantee everything else
//! (safety conditions, undo correctness) builds on.

use pivot_lang::interp;
use pivot_undo::engine::Session;
use pivot_undo::ALL_KINDS;
use pivot_workload::{gen_inputs, gen_program, WorkloadCfg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn each_single_application_preserves_output(seed in 0u64..400, which in 0usize..64) {
        let cfg = WorkloadCfg { fragments: 6, noise_ratio: 0.3, ..Default::default() };
        let prog = gen_program(seed, &cfg);
        let inputs = gen_inputs(seed, 96);
        let expected = interp::run_default(&prog, &inputs).unwrap();
        let mut s = Session::new(prog);
        let opps = s.find_all();
        prop_assume!(!opps.is_empty());
        let opp = opps[which % opps.len()].clone();
        s.apply(&opp).unwrap();
        let got = interp::run_default(&s.prog, &inputs).unwrap();
        prop_assert_eq!(got, expected, "{} broke semantics", opp.description);
    }

    #[test]
    fn greedy_saturation_preserves_output(seed in 0u64..120) {
        // Apply transformations until fixpoint (bounded), checking output
        // after every application.
        let cfg = WorkloadCfg { fragments: 5, noise_ratio: 0.2, figure1_chains: 1, ..Default::default() };
        let prog = gen_program(seed, &cfg);
        let inputs = gen_inputs(seed, 96);
        let expected = interp::run_default(&prog, &inputs).unwrap();
        let mut s = Session::new(prog);
        let mut budget = 40usize;
        'outer: while budget > 0 {
            for kind in ALL_KINDS {
                if budget == 0 {
                    break 'outer;
                }
                if let Some(id) = s.apply_kind(kind) {
                    budget -= 1;
                    let got = interp::run_default(&s.prog, &inputs).unwrap();
                    prop_assert_eq!(&got, &expected, "{} (#{}) broke semantics", kind, id.0);
                    continue 'outer; // restart the kind sweep
                }
            }
            break;
        }
        s.assert_consistent();
    }
}

#[test]
fn transformed_programs_remain_structurally_valid() {
    for seed in 0..12u64 {
        let cfg = WorkloadCfg {
            fragments: 8,
            ..Default::default()
        };
        let prog = gen_program(seed, &cfg);
        let mut s = Session::new(prog);
        for kind in ALL_KINDS {
            while s.apply_kind(kind).is_some() {
                s.prog.assert_consistent();
            }
        }
        // Re-parse of the printed source must agree (printer/parser stay in
        // sync with the transformed shapes).
        let reparsed = pivot_lang::parser::parse(&s.source()).unwrap();
        assert!(pivot_lang::equiv::programs_equal(&s.prog, &reparsed));
    }
}

//! Snapshot-aliasing oracle for the copy-on-write spine: checkpoints and
//! session clones are *immutable captures*. Whatever the live session does
//! afterwards — more transformations, undos, rollbacks, journal
//! compaction, crash recovery — no held snapshot may observe the
//! mutation. These tests hold snapshots across every mutating pathway and
//! compare fingerprints taken at capture time, and additionally assert
//! (via the `PVec` sharing diagnostics and `Arc` refcounts) that the
//! captures really do share structure rather than passing by deep copy.

use pivot_lang::parser::parse;
use pivot_undo::engine::{Session, Strategy};
use pivot_undo::snapshot::fingerprint;
use pivot_undo::{Journal, XformKind};
use pivot_workload::{prepare, WorkloadCfg};
use std::path::PathBuf;
use std::sync::Arc;

const SRC: &str = "d = e + f\nr = e + f\nwrite r\nwrite d\nx = 3 * 4\nwrite x\n";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pivot_snapshot_aliasing");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.{}.journal", std::process::id()))
}

fn workload_session() -> (Session, Vec<pivot_undo::XformId>) {
    let cfg = WorkloadCfg {
        fragments: 8,
        noise_ratio: 0.3,
        figure1_chains: 1,
        ..Default::default()
    };
    let p = prepare(0xA11A5, &cfg, 12);
    (p.session, p.applied)
}

#[test]
fn clones_share_structure_and_stay_immutable() {
    let (mut s, applied) = workload_session();
    let held = s.clone();
    let held_fp = fingerprint(&held);
    let held_src = held.source();

    // The clone is a share, not a copy: the action log's chunks are all
    // referenced from both sessions, and the rep is one Arc two ways.
    assert!(
        s.log.actions.shared_chunks() == s.log.actions.chunk_count(),
        "clone must share every action-log chunk"
    );
    assert!(
        s.history.records.shared_chunks() > 0,
        "clone must share history chunks"
    );
    assert!(Arc::strong_count(&s.rep) >= 2, "clone must share the rep");

    for id in applied {
        let _ = s.undo(id, Strategy::Regional);
    }
    assert_ne!(fingerprint(&s), held_fp, "undos must change the session");
    assert_eq!(fingerprint(&held), held_fp, "held clone observed an undo");
    assert_eq!(held.source(), held_src, "held clone's source changed");
    held.assert_consistent();
}

#[test]
fn checkpoints_held_across_rollbacks_stay_exact() {
    let (mut s, applied) = workload_session();

    // Take a checkpoint before every undo and record the fingerprint each
    // captured; roll back through them in reverse and in arbitrary
    // (non-LIFO) order — every restore must be exact.
    let mut caps = Vec::new();
    for &id in &applied {
        caps.push((fingerprint(&s), s.checkpoint()));
        let _ = s.undo(id, Strategy::Regional);
    }

    // Non-LIFO: roll back to the middle, then to an *earlier* capture,
    // then re-check a later capture still restores exactly.
    let mid = caps.len() / 2;
    let (fp_mid, cp_mid) = caps.swap_remove(mid);
    s.rollback(cp_mid);
    assert_eq!(fingerprint(&s), fp_mid, "mid rollback inexact");
    s.assert_consistent();

    let (fp_first, cp_first) = caps.swap_remove(0);
    s.rollback(cp_first);
    assert_eq!(fingerprint(&s), fp_first, "earlier rollback inexact");
    s.assert_consistent();

    let (fp_last, cp_last) = caps.pop().unwrap();
    s.rollback(cp_last);
    assert_eq!(fingerprint(&s), fp_last, "later rollback inexact");
    s.assert_consistent();
}

#[test]
fn held_snapshots_survive_journal_compaction() {
    let path = tmp("compaction");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    let cse = s.apply_kind(XformKind::Cse).expect("e + f recurs");
    s.apply_kind(XformKind::Cfo).expect("3 * 4 folds");

    let held = s.clone();
    let held_fp = fingerprint(&held);
    let cp = s.checkpoint();
    let cp_fp = fingerprint(&s);

    // Compaction serializes a checkpoint record from the *shared* state
    // and rewrites the journal; neither held capture may move.
    assert!(s.compact_journal().unwrap(), "journal attached");
    s.undo(cse, Strategy::Regional).unwrap();

    assert_eq!(fingerprint(&held), held_fp, "clone observed compaction");
    s.rollback(cp);
    assert_eq!(fingerprint(&s), cp_fp, "checkpoint observed compaction");
    s.assert_consistent();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn held_snapshots_survive_recovery_of_their_journal() {
    let path = tmp("recovery");
    let _ = std::fs::remove_file(&path);
    let mut s = Session::from_source(SRC).unwrap();
    s.set_journal(Journal::open(&path).unwrap());
    s.apply_kind(XformKind::Cse).expect("e + f recurs");
    s.apply_kind(XformKind::Cfo).expect("3 * 4 folds");

    let held = s.clone();
    let held_fp = fingerprint(&held);

    // Recover a second session from the same journal and mutate it; the
    // held clone of the original shares nothing observable with it.
    let mut recovered = Session::recover(parse(SRC).unwrap(), &path)
        .expect("journal recovers")
        .session;
    assert_eq!(fingerprint(&recovered), held_fp, "recovery must be exact");
    let ids: Vec<_> = recovered.history.active().map(|r| r.id).collect();
    for id in ids {
        let _ = recovered.undo(id, Strategy::Regional);
    }
    assert_ne!(fingerprint(&recovered), held_fp);
    assert_eq!(fingerprint(&held), held_fp, "held clone observed recovery");
    held.assert_consistent();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_is_constant_cost_in_shared_chunks() {
    // The production checkpoint leaves all but the tail chunks shared;
    // a forward apply afterwards dirties only the chunks it touches.
    let (mut s, _) = workload_session();
    let _cp = s.checkpoint();
    let total = s.log.actions.chunk_count();
    assert_eq!(
        s.log.actions.shared_chunks(),
        total,
        "checkpoint must share all action-log chunks"
    );
    if s.apply_kind(XformKind::Dce).is_some() {
        let shared_after = s.log.actions.shared_chunks();
        assert!(
            total == 0 || shared_after >= total.saturating_sub(1),
            "an append may unshare at most the tail chunk \
             (shared {shared_after} of {total})"
        );
    }
}

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace consumes: a seedable
//! [`rngs::StdRng`] (splitmix64 — deterministic, statistically fine for
//! workload generation, not cryptographic), `Rng::{gen, gen_range,
//! gen_bool}` over integer ranges, and `seq::SliceRandom::{shuffle,
//! choose}` (Fisher–Yates).

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sample a value of `Self` uniformly from `rng` (the `Standard`
/// distribution of real rand, collapsed onto the type itself).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type a uniform range sample can be drawn for.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range a uniform sample can be drawn from.
/// (Blanket impls over [`SampleUniform`], like real rand, so integer-literal
/// inference flows from the use site into the range.)
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (rand's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64 (deterministic, fast; this
    /// stand-in does not promise rand's own value stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-5..5);
            assert_eq!(x, b.gen_range(-5..5));
            assert!((-5..5).contains(&x));
        }
        let y: usize = a.gen_range(0..=3);
        assert!(y <= 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}

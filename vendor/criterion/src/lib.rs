//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `BatchSize`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock measurement: each
//! bench runs `sample_size` timed iterations and reports min/mean. No
//! statistical analysis, HTML reports, or saved baselines. When the binary
//! is invoked with `--test` (as `cargo test --benches` does), each bench
//! runs a single iteration so the target merely smoke-tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility;
/// every batch size runs setup once per timed iteration here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small inputs (real criterion batches these; we do not).
    SmallInput,
    /// Large inputs.
    LargeInput,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of timed iterations per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Parse CLI arguments (only `--test` is honoured).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single stand-alone bench.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let samples = self.samples(None);
        run_bench(&id.into().id, samples, f);
    }

    fn samples(&self, group_override: Option<usize>) -> usize {
        if self.test_mode {
            1
        } else {
            group_override.unwrap_or(self.sample_size)
        }
    }
}

/// A group of related benches sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the per-bench iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Run one bench in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.c.samples(self.sample_size);
        run_bench(&full, samples, f);
    }

    /// Run one bench with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to each bench closure; records the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    ran: bool,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        self.ran = true;
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh `setup` outputs (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.ran = true;
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
        ran: false,
    };
    f(&mut b);
    if !b.ran {
        println!("{name:<48} (no measurement)");
        return;
    }
    let mean = b.elapsed.as_nanos() as f64 / samples as f64;
    println!(
        "{name:<48} time: {:>12} /iter  ({samples} iters)",
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a bench group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x * x, BatchSize::PerIteration)
        });
        g.finish();
    }

    #[test]
    fn api_smoke() {
        let mut c = Criterion::default().sample_size(2);
        demo(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}

//! Offline stand-in for the `crossbeam` crate, covering the scoped-thread
//! surface this workspace uses (`crossbeam::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`). Implemented directly over
//! [`std::thread::scope`], which provides the same structured-concurrency
//! guarantee (all spawned threads join before `scope` returns).

use std::any::Any;
use std::thread;

/// Error payload of a panicked scope (mirrors crossbeam's signature).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle passed to the closure given to [`scope`]. Spawned threads
/// may borrow from the enclosing environment (`'env`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a dummy argument slot
    /// (crossbeam passes the scope itself; every caller here ignores it).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Create a scope for spawning borrowing threads. Returns `Ok(r)` with the
/// closure's result; all threads spawned in the scope are joined before
/// this returns (unjoined panics propagate, as with `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sums = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<u64>>()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API this workspace uses —
//! `proptest!`, integer-range / `Just` / tuple / `prop_oneof!` /
//! `collection::vec` / `prop_recursive` strategies, `BoxedStrategy`, and
//! the `prop_assert*` / `prop_assume!` macros — on top of a deterministic
//! splitmix64 sampler. Differences from real proptest: no shrinking, no
//! persisted regression files (`proptest-regressions` inputs are ignored),
//! and the value stream is this crate's own (seeded per test name, so runs
//! are reproducible).

pub mod test_runner {
    //! Config, RNG and failure plumbing used by the generated test fns.

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: draw a fresh case, don't count this one.
        Reject(String),
        /// `prop_assert*!` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic splitmix64 sampler.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so every test has a stable,
        /// distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase (and make cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Recursive strategy: up to `depth` levels of `f`-composed values
        /// over `self` as the leaf. (`_desired_size` and `_expected_branch`
        /// are accepted for API compatibility and ignored — no shrinking.)
        fn prop_recursive<F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), f(cur)]).boxed();
            }
            cur
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_dyn(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(0i64..5, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Internal: expand each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).saturating_add(1000),
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), __accepted, __config.cases
                );
                let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
}

/// Assert inside a proptest body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), __a, __b, format!($($fmt)+)
        );
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Discard the current case (draw another without counting this one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in -5i64..=5, v in crate::collection::vec(0u64..10, 1..4)) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn recursive_and_oneof() {
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = prop_oneof![(0i64..4).prop_map(T::Leaf), Just(T::Leaf(9))];
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
                .boxed()
        });
        let mut rng = crate::test_runner::TestRng::from_name("recursive_and_oneof");
        let mut saw_node = false;
        for _ in 0..64 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, T::Node(..));
        }
        assert!(saw_node, "recursion never produced a composite");
    }
}
